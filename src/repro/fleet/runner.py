"""Fleet execution: deterministic sharding over a supervised pool.

The parent expands the population serially (cheap, deterministic), then
farms cache-miss sessions out to a
:class:`~repro.fleet.supervisor.Supervisor`-driven worker pool. Each
session is an independent simulation with its own SeedSequence-derived
root seed, so sharding is trivially safe: results are assembled back in
session-id order and are bit-identical whatever the worker count,
completion order, or crash/kill/timeout interleaving. Cache hits never
re-enter a worker; successful payloads stream into the cache (and the
optional run journal) the moment they complete, so an interrupted run
keeps its finished work.
"""

import os
from dataclasses import dataclass, field

from repro.fleet.cache import CacheDigestError, ResultCache
from repro.fleet.population import expand_population, paper_population
from repro.fleet.session import (
    SessionResult,
    session_payload_digest,
    simulate_session_payload,
)
from repro.fleet.supervisor import RunJournal, Supervisor, run_key_for


@dataclass
class FleetResult:
    """Everything a fleet run produced, in session-id order.

    The fleet is allowed to be *partial*: sessions whose simulation
    raised (e.g. an un-recovered injected fault killing a vendor-runtime
    session) appear as :class:`SessionResult`\\ s carrying a structured
    ``error`` instead of runs — as do sessions the supervisor
    quarantined after repeated worker crashes. ``ok_results`` /
    ``failures`` split them.
    """

    seed: int
    workers: int
    results: list = field(default_factory=list)
    #: Sessions actually simulated this run (cache + journal misses).
    simulated: int = 0
    #: Sessions served from the on-disk cache.
    cache_hits: int = 0
    #: Sessions resumed from an interrupted run's journal.
    journal_hits: int = 0
    #: Supervision ledger (crashes survived, respawns, quarantines) —
    #: scheduling facts only; never payload content.
    supervision: dict = field(default_factory=dict)

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok_results(self):
        """Sessions that completed (possibly degraded)."""
        return [result for result in self.results if result.ok]

    @property
    def failures(self):
        """Sessions that died with a structured error."""
        return [result for result in self.results if not result.ok]

    @property
    def failure_rate(self):
        """Fraction of sessions that ended in a structured error."""
        if not self.results:
            return 0.0
        return len(self.failures) / len(self.results)


def run_fleet(population=None, sessions=64, workers=1, seed=0,
              cache_dir=None, runs=None, fault_rate=None,
              session_retries=1, verify_cache=None, journal=None,
              session_timeout_s=None, max_crashes=3, backoff_base_s=0.05,
              backoff_cap_s=2.0, on_session=None):
    """Simulate a device population; returns a :class:`FleetResult`.

    Parameters
    ----------
    population:
        A :class:`~repro.fleet.population.DevicePopulation`; defaults to
        :func:`~repro.fleet.population.paper_population`.
    sessions:
        Number of per-device sessions to expand and simulate.
    workers:
        Process-pool size; ``<= 1`` runs in-process (bit-identical
        results either way).
    seed:
        Root seed for both axis sampling and per-session streams.
    cache_dir:
        Optional directory for the content-hash result cache. Failed
        sessions are never cached: a later run with the fault plan
        changed (or the bug fixed) must re-simulate them. Successful
        payloads are written as they complete, so a crash mid-run keeps
        every finished session.
    runs:
        Override the population's per-session iteration count.
    fault_rate:
        Override the population's per-call FastRPC fault probability.
    session_retries:
        Extra attempts for a session whose simulation raised, before it
        is recorded as a structured error result. Deterministic injected
        faults fail identically on retry (and the error records how many
        attempts were burned); the bound exists for transient host-level
        failures in worker processes. Failed sessions requeue
        individually — one retrying session never blocks the rest.
    verify_cache:
        Sanitizer hook: re-simulate every cache hit and require its
        :func:`~repro.fleet.session.session_payload_digest` to match
        the cached payload's, so a stale or tampered entry can never
        silently change fleet percentiles
        (:class:`~repro.fleet.cache.CacheDigestError` otherwise).
        ``None`` defers to the ``REPRO_SANITIZE`` environment variable.
    journal:
        Optional path to a :class:`~repro.fleet.supervisor.RunJournal`
        file. Finished sessions (including structured failures) are
        appended as they complete; re-running the same fleet against
        the same journal resumes instead of re-simulating.
    session_timeout_s:
        Per-session wall-clock deadline enforced by the supervisor when
        ``workers > 1``; a hung worker is killed and the session
        requeued with capped exponential backoff.
    max_crashes:
        Worker losses (crashes + deadline kills) a single session may
        cause before it is quarantined as a structured error.
    backoff_base_s / backoff_cap_s:
        Supervisor re-submit backoff after a strike.
    on_session:
        Progress callback ``(spec, payload)`` fired as each pending
        session produces its final payload (completion order — never
        let it shape results).
    """
    if population is None:
        population = paper_population()
    if runs is not None:
        population = population.with_runs(runs)
    if fault_rate is not None:
        population = population.with_fault_rate(fault_rate)
    if session_retries < 0:
        raise ValueError(f"session_retries must be >= 0, got {session_retries}")
    if verify_cache is None:
        verify_cache = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    specs = expand_population(population, sessions, seed=seed)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    by_id = {}
    pending = []
    for spec in specs:
        payload = cache.get(spec.digest()) if cache is not None else None
        if payload is not None and verify_cache:
            fresh = simulate_session_payload(spec.to_dict())
            if session_payload_digest(fresh) != session_payload_digest(
                payload
            ):
                raise CacheDigestError(
                    f"cached result for session {spec.session_id} (key "
                    f"{spec.digest()[:12]}...) does not match a fresh "
                    "simulation; evict the entry or fix the determinism "
                    "regression"
                )
        if payload is not None:
            by_id[spec.session_id] = SessionResult.from_dict(
                payload, from_cache=True
            )
        else:
            pending.append(spec)

    journal_hits = 0
    run_journal = None
    if journal is not None:
        run_journal = RunJournal(
            journal, run_key_for(specs, session_retries=session_retries)
        )
        resumed = []
        for spec in pending:
            payload = run_journal.recorded.get(spec.digest())
            if payload is not None:
                by_id[spec.session_id] = SessionResult.from_dict(payload)
                journal_hits += 1
            else:
                resumed.append(spec)
        pending = resumed

    spec_by_id = {spec.session_id: spec for spec in pending}
    supervisor = Supervisor(
        workers=workers,
        session_retries=session_retries,
        session_timeout_s=session_timeout_s,
        max_crashes=max_crashes,
        backoff_base_s=backoff_base_s,
        backoff_cap_s=backoff_cap_s,
    )

    def _on_result(session_id, payload):
        # Streamed per completed session: a crash one session later
        # loses nothing that already finished.
        spec = spec_by_id[session_id]
        if "error" not in payload and cache is not None:
            cache.put(spec.digest(), payload)
        if run_journal is not None:
            run_journal.record(spec.digest(), payload)
        if on_session is not None:
            on_session(spec, payload)

    try:
        payload_by_id = supervisor.run(
            [(spec.session_id, spec.to_dict()) for spec in pending],
            on_result=_on_result,
        )
    finally:
        if run_journal is not None:
            run_journal.close()

    for spec in pending:
        by_id[spec.session_id] = SessionResult.from_dict(
            payload_by_id[spec.session_id]
        )

    return FleetResult(
        seed=seed,
        workers=workers,
        results=[by_id[spec.session_id] for spec in specs],
        simulated=len(pending),
        cache_hits=len(specs) - len(pending) - journal_hits,
        journal_hits=journal_hits,
        supervision=supervisor.stats.to_dict(),
    )
