"""Fleet execution: deterministic sharding over a worker pool + cache.

The parent expands the population serially (cheap, deterministic), then
farms cache-miss sessions out to a ``ProcessPoolExecutor``. Each session
is an independent simulation with its own SeedSequence-derived root
seed, so sharding is trivially safe: results are assembled back in
session-id order and are bit-identical whatever the worker count or
completion order. Cache hits never re-enter a worker.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.fleet.cache import CacheDigestError, ResultCache
from repro.fleet.population import expand_population, paper_population
from repro.fleet.session import (
    SessionResult,
    session_payload_digest,
    simulate_session_payload,
)


@dataclass
class FleetResult:
    """Everything a fleet run produced, in session-id order.

    The fleet is allowed to be *partial*: sessions whose simulation
    raised (e.g. an un-recovered injected fault killing a vendor-runtime
    session) appear as :class:`SessionResult`\\ s carrying a structured
    ``error`` instead of runs. ``ok_results`` / ``failures`` split them.
    """

    seed: int
    workers: int
    results: list = field(default_factory=list)
    #: Sessions actually simulated this run (cache misses).
    simulated: int = 0
    #: Sessions served from the on-disk cache.
    cache_hits: int = 0

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok_results(self):
        """Sessions that completed (possibly degraded)."""
        return [result for result in self.results if result.ok]

    @property
    def failures(self):
        """Sessions that died with a structured error."""
        return [result for result in self.results if not result.ok]


def _map_payloads(specs, workers):
    """Run ``simulate_session_payload`` over specs, pooled or in-process."""
    payloads = [spec.to_dict() for spec in specs]
    if workers > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(simulate_session_payload, payloads))
    return [simulate_session_payload(payload) for payload in payloads]


def run_fleet(population=None, sessions=64, workers=1, seed=0,
              cache_dir=None, runs=None, fault_rate=None,
              session_retries=1, verify_cache=None):
    """Simulate a device population; returns a :class:`FleetResult`.

    Parameters
    ----------
    population:
        A :class:`~repro.fleet.population.DevicePopulation`; defaults to
        :func:`~repro.fleet.population.paper_population`.
    sessions:
        Number of per-device sessions to expand and simulate.
    workers:
        Process-pool size; ``<= 1`` runs in-process (bit-identical
        results either way).
    seed:
        Root seed for both axis sampling and per-session streams.
    cache_dir:
        Optional directory for the content-hash result cache. Failed
        sessions are never cached: a later run with the fault plan
        changed (or the bug fixed) must re-simulate them.
    runs:
        Override the population's per-session iteration count.
    fault_rate:
        Override the population's per-call FastRPC fault probability.
    session_retries:
        Extra attempts for a session whose simulation raised, before it
        is recorded as a structured error result. Deterministic injected
        faults fail identically on retry (and the error records how many
        attempts were burned); the bound exists for transient host-level
        failures in worker processes.
    verify_cache:
        Sanitizer hook: re-simulate every cache hit and require its
        :func:`~repro.fleet.session.session_payload_digest` to match
        the cached payload's, so a stale or tampered entry can never
        silently change fleet percentiles
        (:class:`~repro.fleet.cache.CacheDigestError` otherwise).
        ``None`` defers to the ``REPRO_SANITIZE`` environment variable.
    """
    if population is None:
        population = paper_population()
    if runs is not None:
        population = population.with_runs(runs)
    if fault_rate is not None:
        population = population.with_fault_rate(fault_rate)
    if session_retries < 0:
        raise ValueError(f"session_retries must be >= 0, got {session_retries}")
    if verify_cache is None:
        verify_cache = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    specs = expand_population(population, sessions, seed=seed)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    by_id = {}
    pending = []
    for spec in specs:
        payload = cache.get(spec.digest()) if cache is not None else None
        if payload is not None and verify_cache:
            fresh = simulate_session_payload(spec.to_dict())
            if session_payload_digest(fresh) != session_payload_digest(
                payload
            ):
                raise CacheDigestError(
                    f"cached result for session {spec.session_id} (key "
                    f"{spec.digest()[:12]}...) does not match a fresh "
                    "simulation; evict the entry or fix the determinism "
                    "regression"
                )
        if payload is not None:
            by_id[spec.session_id] = SessionResult.from_dict(
                payload, from_cache=True
            )
        else:
            pending.append(spec)

    attempts = {spec.session_id: 0 for spec in pending}
    payload_by_id = {}
    remaining = list(pending)
    for round_index in range(session_retries + 1):
        if not remaining:
            break
        retry = []
        for spec, payload in zip(remaining, _map_payloads(remaining, workers)):
            attempts[spec.session_id] += 1
            if "error" in payload and round_index < session_retries:
                retry.append(spec)
            else:
                payload_by_id[spec.session_id] = payload
        remaining = retry

    for spec in pending:
        payload = payload_by_id[spec.session_id]
        if "error" in payload:
            payload["error"]["attempts"] = attempts[spec.session_id]
        elif cache is not None:
            cache.put(spec.digest(), payload)
        by_id[spec.session_id] = SessionResult.from_dict(payload)

    return FleetResult(
        seed=seed,
        workers=workers,
        results=[by_id[spec.session_id] for spec in specs],
        simulated=len(pending),
        cache_hits=len(specs) - len(pending),
    )
