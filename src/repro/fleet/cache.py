"""On-disk result cache: content-hash of a session spec → its result.

Re-runs and incremental sweeps (more sessions, a changed axis weight
that leaves most sampled specs identical) skip already-simulated
sessions entirely. Entries are one JSON file per spec digest, sharded
into two-hex-character subdirectories, written atomically (temp file +
``os.replace``) so a crashed or concurrent run never leaves a torn
entry behind.
"""

import json
import os
import pathlib
import tempfile


class CacheDigestError(RuntimeError):
    """A cached session result no longer matches a fresh simulation.

    Raised by the fleet runner's sanitizer hook: either the cache entry
    was tampered with/corrupted in a way that still parses, or the
    simulation is no longer deterministic for that spec. Both mean the
    cached fleet percentiles can no longer be trusted.
    """


class ResultCache:
    """Maps :meth:`SessionSpec.digest` keys to session-result payloads."""

    def __init__(self, cache_dir):
        self.cache_dir = pathlib.Path(cache_dir)
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ValueError(
                f"cache path exists and is not a directory: {cache_dir}"
            )
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key):
        """The cached payload dict for ``key``, or ``None``.

        A corrupt (torn/truncated) entry counts as a miss and is
        removed so the slot can be rewritten. Eviction is safe under
        concurrent runs: a decode failure is re-read once first (an
        ``os.replace`` by a parallel writer is atomic, so its fresh
        entry parses on the second attempt instead of being evicted),
        and the unlink itself tolerates the entry already being gone
        (``missing_ok`` semantics — two runs may race to evict).
        """
        path = self._path(key)
        for attempt in (0, 1):
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                self.misses += 1
                return None
            except (json.JSONDecodeError, OSError):
                if attempt == 0:
                    continue
                self.misses += 1
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                return None
            self.hits += 1
            return payload

    def put(self, key, payload):
        """Atomically persist ``payload`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def __len__(self):
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("??/*.json"))
