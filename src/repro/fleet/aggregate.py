"""Fleet-level AI-tax aggregation: percentiles, slices, cold vs steady.

Pools per-iteration measurements across every session of a fleet run
and reduces them to the population statistics the paper's single-device
figures only hint at: p50/p90/p99 end-to-end latency per packaging,
SoC, and model slice; the cold-start vs steady-state split (Fig. 8 at
population scale); the app-vs-benchmark tail ratio (Fig. 11); and the
quantized-app capture+pre+post share (Takeaway 1).
"""

from dataclasses import dataclass, field

from repro.core import percentile
from repro.core.result import ExperimentResult
from repro.fleet.session import STAGE_FIELDS, SessionResult
from repro.sim import units


@dataclass
class SliceStats:
    """Latency percentiles of one fleet slice (pooled steady-state runs).

    ``p50/p90/p99`` are absolute end-to-end percentiles over the pooled
    runs — they reflect the slice's workload mix as well as its
    variability. ``tail_ratio`` is the run-to-run p99/p50 over
    *session-median-normalized* latencies, which isolates the Fig.-11
    phenomenon (how much one device swings between identical runs) from
    the cross-device mix.
    """

    name: str
    sessions: int
    runs: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    tail_ratio: float

    def as_row(self):
        return (
            self.name, self.sessions, self.runs,
            self.p50_ms, self.p90_ms, self.p99_ms, self.tail_ratio,
        )


def _slice_stats(name, results, runs_of=None):
    """Pooled percentile stats over ``results``.

    ``runs_of`` selects which iterations of a session to pool; the
    default is the steady-state runs (cold start excluded).
    """
    if runs_of is None:
        runs_of = lambda result: result.steady_runs  # noqa: E731
    totals_ms = []
    normalized = []
    for result in results:
        session_ms = [
            units.to_ms(SessionResult.total_us(run))
            for run in runs_of(result)
        ]
        totals_ms.extend(session_ms)
        session_median = percentile(session_ms, 0.5) if session_ms else 0.0
        if session_median > 0:
            normalized.extend(value / session_median for value in session_ms)
    norm_p50 = percentile(normalized, 0.50) if normalized else 0.0
    norm_p99 = percentile(normalized, 0.99) if normalized else 0.0
    return SliceStats(
        name=name,
        sessions=len(results),
        runs=len(totals_ms),
        p50_ms=percentile(totals_ms, 0.50),
        p90_ms=percentile(totals_ms, 0.90),
        p99_ms=percentile(totals_ms, 0.99),
        tail_ratio=norm_p99 / norm_p50 if norm_p50 > 0 else 0.0,
    )


def _mean_stage_fraction(results, stages, runs_of=None):
    """Mean fraction of end-to-end time spent in ``stages``, pooled."""
    if runs_of is None:
        runs_of = lambda result: result.steady_runs  # noqa: E731
    fractions = [
        sum(run[stage] for stage in stages) / SessionResult.total_us(run)
        for result in results
        for run in runs_of(result)
        if SessionResult.total_us(run) > 0
    ]
    return sum(fractions) / len(fractions) if fractions else 0.0


def _grouped(results, key):
    groups = {}
    for result in results:
        groups.setdefault(key(result.spec), []).append(result)
    return groups


@dataclass
class FleetAggregate:
    """All fleet-level statistics of one :class:`FleetResult`."""

    sessions: int
    seed: int
    overall: SliceStats
    by_context: dict
    by_soc: dict
    by_model: dict
    cold: SliceStats
    steady: SliceStats
    #: Mean capture+pre+post share of end-to-end time over the quantized
    #: accelerated-app slice (int8 + app + nnapi, with fallbacks).
    quantized_app_tax_fraction: float
    #: Mean non-inference share of end-to-end time, whole fleet.
    fleet_tax_fraction: float
    notes: list = field(default_factory=list)
    #: Sessions excluded because their simulation died (chaos runs).
    failed_sessions: int = 0

    @property
    def cold_start_penalty(self):
        """Cold-start p50 over steady-state p50."""
        if self.steady.p50_ms <= 0:
            return 0.0
        return self.cold.p50_ms / self.steady.p50_ms

    def tail_ratio(self, context):
        return self.by_context[context].tail_ratio

    def to_experiment_result(self):
        """Render as an :class:`ExperimentResult` like every other figure."""
        headers = (
            "slice", "sessions", "runs",
            "p50 ms", "p90 ms", "p99 ms", "rr p99/p50",
        )
        rows = [self.overall.as_row()]
        for group in (self.by_context, self.by_soc, self.by_model):
            for name in sorted(group):
                rows.append(group[name].as_row())
        rows.append(self.cold.as_row())
        rows.append(self.steady.as_row())
        series = {
            "app_tail_ratio": [self.by_context["context:app"].tail_ratio]
            if "context:app" in self.by_context else [],
            "benchmark_tail_ratio": [self.by_context["context:cli"].tail_ratio]
            if "context:cli" in self.by_context else [],
            "quantized_app_tax_fraction": [self.quantized_app_tax_fraction],
            "fleet_tax_fraction": [self.fleet_tax_fraction],
            "cold_start_penalty": [self.cold_start_penalty],
        }
        return ExperimentResult(
            experiment_id="fleet_percentiles",
            title=(
                f"fleet of {self.sessions} device sessions (seed "
                f"{self.seed}): end-to-end latency percentiles"
            ),
            headers=headers,
            rows=rows,
            series=series,
            notes=list(self.notes),
        )


def aggregate_fleet(fleet):
    """Reduce a :class:`~repro.fleet.runner.FleetResult` to statistics.

    Failed sessions (structured-error results from a chaos run) are
    excluded from every statistic and reported via
    ``failed_sessions``/notes; a fleet where *every* session failed
    cannot be aggregated.
    """
    all_results = list(fleet.results)
    results = [result for result in all_results if result.ok]
    failed = len(all_results) - len(results)
    if not results:
        if failed:
            raise ValueError(
                f"cannot aggregate: all {failed} fleet sessions failed"
            )
        raise ValueError("cannot aggregate an empty fleet")

    # sorted(...) so slice order is the group name, not the order the
    # sessions happened to arrive in — the slices reach rendered rows.
    by_context = {
        f"context:{name}": _slice_stats(f"context:{name}", group)
        for name, group in sorted(
            _grouped(results, lambda s: s.context).items()
        )
    }
    by_soc = {
        f"soc:{name}": _slice_stats(f"soc:{name}", group)
        for name, group in sorted(
            _grouped(results, lambda s: s.soc).items()
        )
    }
    by_model = {
        name: _slice_stats(name, group)
        for name, group in sorted(
            _grouped(
                results, lambda s: f"model:{s.model_key}[{s.dtype}]"
            ).items()
        )
    }

    # Takeaway 1 is about *accelerated* quantized apps (inference on the
    # DSP via NNAPI leaves capture+pre+post dominating). Fall back to
    # progressively wider quantized slices when a small fleet has no
    # NNAPI app sessions.
    for predicate in (
        lambda s: s.dtype == "int8" and s.context == "app"
        and s.target == "nnapi",
        lambda s: s.dtype == "int8" and s.context == "app",
        lambda s: s.dtype == "int8",
    ):
        quantized_app = [r for r in results if predicate(r.spec)]
        if quantized_app:
            break
    quantized_app_tax = _mean_stage_fraction(
        quantized_app, ("capture_us", "pre_us", "post_us")
    )
    fleet_tax = _mean_stage_fraction(
        results, tuple(f for f in STAGE_FIELDS if f != "inference_us")
    )

    aggregate = FleetAggregate(
        sessions=len(results),
        seed=fleet.seed,
        overall=_slice_stats("fleet", results),
        by_context=by_context,
        by_soc=by_soc,
        by_model=by_model,
        cold=_slice_stats(
            "cold-start", results, runs_of=lambda r: [r.cold_run]
        ),
        steady=_slice_stats("steady-state", results),
        quantized_app_tax_fraction=quantized_app_tax,
        fleet_tax_fraction=fleet_tax,
        failed_sessions=failed,
    )
    aggregate.notes = _shape_notes(aggregate)
    return aggregate


def _shape_notes(aggregate):
    """The paper-shape observations, stated against the aggregate."""
    notes = []
    app = aggregate.by_context.get("context:app")
    cli = aggregate.by_context.get("context:cli")
    if app is not None and cli is not None:
        relation = ">" if app.tail_ratio > cli.tail_ratio else "<="
        notes.append(
            f"Fig 11 shape: app p99/p50 {app.tail_ratio:.2f} {relation} "
            f"benchmark p99/p50 {cli.tail_ratio:.2f} (heavy app tail)"
        )
    notes.append(
        "Takeaway 1: quantized app slice spends "
        f"{aggregate.quantized_app_tax_fraction:.1%} of end-to-end time in "
        "capture+pre+post (paper: ~50%)"
    )
    notes.append(
        f"cold-start p50 is {aggregate.cold_start_penalty:.2f}x "
        "steady-state p50"
    )
    if aggregate.failed_sessions:
        notes.append(
            f"partial fleet: {aggregate.failed_sessions} sessions died "
            "and are excluded from every statistic"
        )
    return notes
