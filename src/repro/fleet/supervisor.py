"""Supervised fleet execution: crash-safe, deadline-bound, resumable.

``run_fleet`` used to drive workers through ``pool.map``: one worker
killed by the OOM killer raised ``BrokenProcessPool`` and discarded
every in-flight session, a hung session stalled the run forever, and
nothing reached the result cache until every retry round had finished.
The :class:`Supervisor` replaces that with the recovery discipline the
simulated stack already practices (the Hexagon watchdog + SSR story of
docs/faults.md), applied to our own execution substrate:

* sessions are submitted **individually** and finish independently —
  there is no retry barrier, so one slow or repeatedly-failing session
  never blocks the others;
* a per-session **wall-clock deadline** turns a hung worker into a
  killed pool plus a requeued session (capped exponential backoff);
* ``BrokenProcessPool`` is survived by **respawning** the pool and
  requeueing only the sessions that were actually in flight;
* a session that repeatedly kills its worker is **quarantined**: after
  ``max_crashes`` strikes it becomes a structured
  :data:`QUARANTINE_ERROR` result instead of an infinite respawn loop;
* every final payload is streamed to an ``on_result`` callback the
  moment it exists, which is how the runner writes the cache and the
  :class:`RunJournal` incrementally — an interrupted run resumes
  without re-simulating finished work.

Supervision changes *scheduling only*. Session payloads are pure
functions of their specs, so the assembled results are bit-identical
whatever crash/kill/timeout interleaving occurred — the same contract
the dual-run replay digests already guard.

Crash attribution: when the pool breaks, the supervisor cannot know
which in-flight session killed the worker, so every one of them takes a
strike and becomes a *suspect*. Suspects re-run **isolated** (alone in
the pool), which makes every later strike exactly attributable: an
innocent session simply completes on its isolated re-run, while a
poisoned spec keeps crashing alone until it hits the quarantine bound.
A deadline kill, by contrast, names its culprit — only the expired
session is struck; other in-flight sessions are requeued strike-free.

This module runs on the *host* side of the process boundary: deadlines
and backoff are wall-clock by design (the simulated clock cannot
observe a wedged worker), which is why it sits on the determinism
linter's ``wallclock_allow`` list.
"""

import collections
import hashlib
import json
import pathlib
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.fleet.session import simulate_session_payload

#: Structured-error type of a quarantined session (the spec crashed or
#: hung its worker ``max_crashes`` times).
QUARANTINE_ERROR = "SessionQuarantined"

#: Journal format version (bumped on incompatible line-schema changes).
JOURNAL_VERSION = 1

#: Longest the wait loop blocks before re-checking deadlines and
#: backoff eligibility (host seconds).
_TICK_S = 0.05


@dataclass
class SupervisorStats:
    """What supervision did during one run (host-side bookkeeping).

    These are *scheduling* facts — they never influence payload
    content, so two runs with different crash histories still produce
    bit-identical results.
    """

    #: Pool submissions, including re-submissions after a strike.
    submitted: int = 0
    #: Sessions that produced a final payload (ok, error, quarantine).
    completed: int = 0
    #: Session executions lost to a broken pool.
    crashes: int = 0
    #: Sessions killed at their wall-clock deadline.
    timeouts: int = 0
    #: Pools torn down and respawned.
    respawns: int = 0
    #: Sessions converted to structured quarantine errors.
    quarantined: int = 0
    #: Simulation-error retries (payloads carrying ``error``).
    sim_retries: int = 0

    def to_dict(self):
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "quarantined": self.quarantined,
            "sim_retries": self.sim_retries,
        }


class _Entry:
    """One session's supervision state (host-side only)."""

    __slots__ = (
        "key", "payload", "strikes", "crashes", "timeouts",
        "sim_attempts", "not_before",
    )

    def __init__(self, key, payload):
        self.key = key
        self.payload = payload
        #: Attributable worker losses (crashes + deadline kills).
        self.strikes = 0
        self.crashes = 0
        self.timeouts = 0
        #: Task executions that returned a structured error payload.
        self.sim_attempts = 0
        #: Earliest host time this entry may be (re)submitted.
        self.not_before = 0.0

    @property
    def suspect(self):
        """Whether this entry must re-run isolated (alone in the pool)."""
        return self.strikes > 0


class _PoolHandle:
    """One ``ProcessPoolExecutor`` plus the ability to hard-kill it.

    ``kill`` SIGKILLs the worker processes before shutting the executor
    down — the only way to reclaim a worker wedged inside a hung
    session, since ``shutdown`` alone waits for running calls.
    """

    def __init__(self, workers):
        self.executor = ProcessPoolExecutor(max_workers=workers)

    def submit(self, task, payload):
        return self.executor.submit(task, payload)

    def kill(self):
        processes = getattr(self.executor, "_processes", None) or {}
        for process in list(processes.values()):
            process.kill()
        self.executor.shutdown(wait=True, cancel_futures=True)

    def close(self):
        self.executor.shutdown(wait=True, cancel_futures=True)


class Supervisor:
    """Drives session payloads through a supervised worker pool.

    Parameters
    ----------
    workers:
        Pool size; ``<= 1`` runs tasks in-process serially (identical
        results; host-crash supervision needs a pool to supervise).
    task:
        Picklable top-level callable ``payload dict -> result dict``.
        A result carrying an ``"error"`` key is a *simulation* failure
        (retried up to ``session_retries`` times, immediately — such
        failures are deterministic); a worker death or hang is a *host*
        failure (requeued with backoff, quarantined after
        ``max_crashes`` strikes).
    session_retries:
        Extra attempts for a task whose result carries ``"error"``.
    session_timeout_s:
        Per-session wall-clock deadline; ``None`` disables deadline
        kills (a hung worker then hangs the run, as before).
    max_crashes:
        Strikes (worker deaths + deadline kills) before a session is
        quarantined as a structured :data:`QUARANTINE_ERROR` result.
    backoff_base_s / backoff_cap_s:
        Capped exponential backoff between a strike and the re-submit:
        ``min(cap, base * 2**(strikes - 1))`` host seconds.
    pool_factory:
        Test hook returning a :class:`_PoolHandle`-shaped object.
    clock / sleep:
        Host time hooks (monotonic seconds), injectable for tests.
    """

    def __init__(self, workers, task=simulate_session_payload,
                 session_retries=1, session_timeout_s=None, max_crashes=3,
                 backoff_base_s=0.05, backoff_cap_s=2.0, pool_factory=None,
                 clock=time.monotonic, sleep=time.sleep):
        if session_retries < 0:
            raise ValueError(
                f"session_retries must be >= 0, got {session_retries}"
            )
        if max_crashes < 1:
            raise ValueError(f"max_crashes must be >= 1, got {max_crashes}")
        if session_timeout_s is not None and session_timeout_s <= 0:
            raise ValueError(
                f"session_timeout_s must be > 0, got {session_timeout_s}"
            )
        self.workers = workers
        self.task = task
        self.session_retries = session_retries
        self.session_timeout_s = session_timeout_s
        self.max_crashes = max_crashes
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._pool_factory = pool_factory or _PoolHandle
        self._clock = clock
        self._sleep = sleep
        self.stats = SupervisorStats()

    # -- entry points ---------------------------------------------------

    def run(self, items, on_result=None):
        """Run ``(key, payload)`` items to completion; returns a dict.

        The returned mapping has one final result payload per key.
        ``on_result(key, payload)`` fires as each session finishes —
        *final* results only, in completion order (which is
        nondeterministic under a pool; never let it shape results).
        """
        if self.workers <= 1 or not items:
            return self._run_serial(items, on_result)
        return self._run_pooled(items, on_result)

    # -- serial (in-process) --------------------------------------------

    def _run_serial(self, items, on_result):
        results = {}
        for key, payload in items:
            entry = _Entry(key, payload)
            while True:
                result = self.task(payload)
                if "error" in result:
                    entry.sim_attempts += 1
                    if entry.sim_attempts <= self.session_retries:
                        self.stats.sim_retries += 1
                        continue
                    result["error"]["attempts"] = entry.sim_attempts
                self._finish(results, on_result, entry, result)
                break
        return results

    # -- pooled ---------------------------------------------------------

    def _run_pooled(self, items, on_result):
        queue = collections.deque(
            _Entry(key, payload) for key, payload in items
        )
        results = {}
        inflight = {}
        pool = self._pool_factory(self.workers)
        try:
            while queue or inflight:
                self._submit_eligible(pool, queue, inflight)
                if not inflight:
                    self._sleep_until_eligible(queue)
                    continue
                done, _pending = wait(
                    set(inflight),
                    timeout=self._wait_timeout(inflight),
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    entry, _submitted = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenExecutor:
                        broken = True
                        self._strike(results, on_result, queue, entry,
                                     crash=True)
                    except Exception as exc:  # noqa: BLE001 - task boundary
                        self._finish(
                            results, on_result, entry,
                            _error_payload(
                                entry, type(exc).__name__, str(exc)
                            ),
                        )
                    else:
                        self._absorb(results, on_result, queue, entry,
                                     payload)
                expired = self._expired(inflight)
                if broken or expired:
                    pool = self._recover(
                        pool, results, on_result, queue, inflight,
                        broken=broken, expired=expired,
                    )
        finally:
            pool.close()
        return results

    def _submit_eligible(self, pool, queue, inflight):
        """Top the pool up, clean sessions first, suspects isolated."""
        if any(entry.suspect for entry, _ in inflight.values()):
            return  # an isolated suspect owns the pool right now
        now = self._clock()
        while len(inflight) < self.workers:
            entry = self._pop_eligible(queue, now, suspects=False)
            if entry is None:
                break
            self._submit(pool, inflight, entry)
        if not inflight:
            entry = self._pop_eligible(queue, now, suspects=True)
            if entry is not None:
                self._submit(pool, inflight, entry)

    def _pop_eligible(self, queue, now, suspects):
        for index, entry in enumerate(queue):
            if entry.suspect is suspects and entry.not_before <= now:
                del queue[index]
                return entry
        return None

    def _submit(self, pool, inflight, entry):
        future = pool.submit(self.task, entry.payload)
        inflight[future] = (entry, self._clock())
        self.stats.submitted += 1

    def _sleep_until_eligible(self, queue):
        now = self._clock()
        earliest = min(entry.not_before for entry in queue)
        if earliest > now:
            self._sleep(min(earliest - now, self.backoff_cap_s))

    def _wait_timeout(self, inflight):
        if self.session_timeout_s is None:
            return _TICK_S
        now = self._clock()
        soonest = min(
            submitted + self.session_timeout_s
            for _entry, submitted in inflight.values()
        )
        return max(0.0, min(_TICK_S, soonest - now))

    def _expired(self, inflight):
        if self.session_timeout_s is None:
            return []
        now = self._clock()
        return [
            future
            for future, (_entry, submitted) in inflight.items()
            if now - submitted >= self.session_timeout_s
        ]

    def _recover(self, pool, results, on_result, queue, inflight,
                 broken, expired):
        """Kill + respawn the pool; requeue only what was in flight."""
        expired = set(expired)
        for future, (entry, _submitted) in list(inflight.items()):
            if future in expired:
                self._strike(results, on_result, queue, entry, crash=False)
            elif broken:
                # A shared crash: the culprit is unknown, so every
                # in-flight session takes a strike and re-runs isolated.
                self._strike(results, on_result, queue, entry, crash=True)
            else:
                # Innocent victim of a deadline kill: requeue free.
                queue.append(entry)
        inflight.clear()
        pool.kill()
        self.stats.respawns += 1
        return self._pool_factory(self.workers)

    def _strike(self, results, on_result, queue, entry, crash):
        entry.strikes += 1
        if crash:
            entry.crashes += 1
            self.stats.crashes += 1
        else:
            entry.timeouts += 1
            self.stats.timeouts += 1
        if entry.strikes >= self.max_crashes:
            self.stats.quarantined += 1
            self._finish(
                results, on_result, entry,
                _error_payload(
                    entry, QUARANTINE_ERROR,
                    (
                        f"session quarantined after {entry.strikes} "
                        f"strikes ({entry.crashes} worker crashes, "
                        f"{entry.timeouts} deadline kills); the spec "
                        "poisons its worker"
                    ),
                    attempts=entry.strikes,
                    crashes=entry.crashes,
                    timeouts=entry.timeouts,
                ),
            )
            return
        backoff = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** (entry.strikes - 1)),
        )
        entry.not_before = self._clock() + backoff
        queue.append(entry)

    def _absorb(self, results, on_result, queue, entry, payload):
        """Classify a task result: final, or a simulation-error retry."""
        if "error" in payload:
            entry.sim_attempts += 1
            if entry.sim_attempts <= self.session_retries:
                self.stats.sim_retries += 1
                # Deterministic failure: requeue immediately, no strike,
                # no backoff, no barrier on the other sessions.
                queue.append(entry)
                return
            payload["error"]["attempts"] = entry.sim_attempts
        self._finish(results, on_result, entry, payload)

    def _finish(self, results, on_result, entry, payload):
        results[entry.key] = payload
        self.stats.completed += 1
        if on_result is not None:
            on_result(entry.key, payload)


def _error_payload(entry, error_type, message, **extra):
    """A session-result-shaped structured error for a failed entry."""
    error = {"type": error_type, "message": message}
    error.update(extra)
    return {"spec": dict(entry.payload), "runs": [], "error": error}


# -- run journal --------------------------------------------------------


def run_key_for(specs, session_retries=1):
    """Content hash identifying one fleet run's exact work list.

    Two invocations with the same population, sessions, seed, and
    retry bound produce the same key, so a journal written by an
    interrupted run is recognized — and one written for different work
    is discarded rather than trusted.
    """
    canonical = json.dumps(
        {
            "digests": [spec.digest() for spec in specs],
            "session_retries": session_retries,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunJournal:
    """Append-only JSONL recovery log for one fleet run.

    Line 1 is a header binding the file to a :func:`run_key_for` key;
    every later line is one finished session:
    ``{"digest": <spec digest>, "payload": <final result payload>}``.
    Loading tolerates a torn final line (a crash mid-append) by
    truncating it away, and discards the whole file when the header's
    run key does not match — a journal never lies about which run it
    belongs to. Unlike the result cache, the journal also records
    *failed* sessions: within one run's retry policy their structured
    errors are final, so a resume re-simulates zero finished sessions.
    """

    def __init__(self, path, run_key):
        self.path = pathlib.Path(path)
        self.run_key = run_key
        self.recorded = {}
        self._handle = None
        self._open()

    def _open(self):
        good_end, lines = self._scan()
        header_ok = bool(lines) and (
            lines[0].get("journal") == JOURNAL_VERSION
            and lines[0].get("run_key") == self.run_key
        )
        if not header_ok:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w")
            self._write_line(
                {"journal": JOURNAL_VERSION, "run_key": self.run_key}
            )
            return
        for record in lines[1:]:
            self.recorded[record["digest"]] = record["payload"]
        with open(self.path, "r+b") as handle:
            handle.truncate(good_end)
        self._handle = open(self.path, "a")

    def _scan(self):
        """Parse whole lines; returns (byte offset after last good, lines)."""
        try:
            data = self.path.read_bytes()
        except (FileNotFoundError, OSError):
            return 0, []
        good_end = 0
        lines = []
        start = 0
        while True:
            newline = data.find(b"\n", start)
            if newline == -1:
                break
            try:
                lines.append(json.loads(data[start:newline]))
            except ValueError:
                break  # torn or corrupt line: everything after is void
            good_end = newline + 1
            start = newline + 1
        return good_end, lines

    def _write_line(self, record):
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def record(self, digest, payload):
        """Append one finished session (idempotent per digest)."""
        if digest in self.recorded:
            return
        self._write_line({"digest": digest, "payload": payload})
        self.recorded[digest] = payload

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
