"""Parallel device-population simulation — the fleet view of the AI tax.

The paper measures single lab devices; this package scales the same
measurement substrate to a heterogeneous population: declare a
:class:`DevicePopulation` (weighted axes over SoC, workload, packaging,
target, thermal state, and background load), expand it into
deterministic per-session configs with SeedSequence-derived seeds, run
them across a process pool with an on-disk result cache, and aggregate
per-stage AI-tax breakdowns into fleet-level percentiles.

    from repro.fleet import run_fleet, aggregate_fleet
    fleet = run_fleet(sessions=64, workers=4, seed=0, cache_dir=".fleet")
    print(aggregate_fleet(fleet).to_experiment_result().render())
"""

from repro.fleet.aggregate import FleetAggregate, SliceStats, aggregate_fleet
from repro.fleet.cache import CacheDigestError, ResultCache
from repro.fleet.population import (
    Axis,
    DevicePopulation,
    chaos_population,
    expand_population,
    paper_population,
    resolve_workload,
)
from repro.fleet.runner import FleetResult, run_fleet
from repro.fleet.supervisor import (
    QUARANTINE_ERROR,
    RunJournal,
    Supervisor,
    SupervisorStats,
    run_key_for,
)
from repro.fleet.session import (
    STAGE_FIELDS,
    SessionResult,
    SessionSpec,
    session_payload_digest,
    simulate_session,
    simulate_session_payload,
)

__all__ = [
    "Axis",
    "STAGE_FIELDS",
    "CacheDigestError",
    "DevicePopulation",
    "FleetAggregate",
    "FleetResult",
    "QUARANTINE_ERROR",
    "ResultCache",
    "RunJournal",
    "SessionResult",
    "SessionSpec",
    "SliceStats",
    "Supervisor",
    "SupervisorStats",
    "aggregate_fleet",
    "chaos_population",
    "expand_population",
    "paper_population",
    "resolve_workload",
    "run_fleet",
    "run_key_for",
    "session_payload_digest",
    "simulate_session",
    "simulate_session_payload",
]
