"""One fleet session: a concrete, serializable simulation unit.

A :class:`SessionSpec` is the fully-resolved form of one sampled device
— everything :func:`simulate_session` needs, as plain JSON-able values,
so it can cross a process boundary to a worker and serve as the content
hash for the on-disk result cache. A :class:`SessionResult` carries the
per-iteration stage latencies back, equally JSON-able, so cached and
freshly-simulated sessions are indistinguishable bit for bit.
"""

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.core import PipelineRun, RunCollection

#: Stage fields copied between PipelineRun and the serialized form.
STAGE_FIELDS = ("capture_us", "pre_us", "inference_us", "post_us", "other_us")


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines one session's measurements."""

    session_id: int
    soc: str
    model_key: str
    dtype: str
    context: str
    target: str
    runs: int
    seed: int
    ambient_celsius: float
    #: ``None`` or ``(count, target)`` of background inference jobs.
    background: tuple

    def to_config(self):
        """The equivalent :class:`~repro.apps.harness.PipelineConfig`."""
        from repro.apps import PipelineConfig

        return PipelineConfig(
            model_key=self.model_key,
            dtype=self.dtype,
            context=self.context,
            target=self.target,
            runs=self.runs,
            soc=self.soc,
            seed=self.seed,
            ambient_celsius=self.ambient_celsius,
            background=self.background,
        )

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, payload):
        cleaned = dict(payload)
        if cleaned.get("background") is not None:
            cleaned["background"] = tuple(cleaned["background"])
        return cls(**cleaned)

    def digest(self):
        """Content hash of the spec — the result-cache key.

        Canonical JSON (sorted keys) so the digest is stable across
        Python versions and dict insertion orders.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class SessionResult:
    """Per-iteration stage latencies of one simulated session."""

    spec: SessionSpec
    #: One dict per iteration, keys :data:`STAGE_FIELDS`, simulated µs.
    runs: list
    from_cache: bool = False

    @property
    def cold_run(self):
        """The first (cold-start) iteration."""
        return self.runs[0]

    @property
    def steady_runs(self):
        """Iterations after the cold start."""
        return self.runs[1:]

    @staticmethod
    def total_us(run):
        return sum(run[fieldname] for fieldname in STAGE_FIELDS)

    @staticmethod
    def tax_us(run):
        return SessionResult.total_us(run) - run["inference_us"]

    def to_collection(self):
        """A :class:`~repro.core.RunCollection` view for existing analyses."""
        collection = RunCollection(
            name=f"fleet:{self.spec.session_id}:{self.spec.model_key}"
        )
        for run in self.runs:
            collection.add(PipelineRun(**{
                fieldname: run[fieldname] for fieldname in STAGE_FIELDS
            }))
        return collection

    def to_dict(self):
        return {"spec": self.spec.to_dict(), "runs": self.runs}

    @classmethod
    def from_dict(cls, payload, from_cache=False):
        return cls(
            spec=SessionSpec.from_dict(payload["spec"]),
            runs=[dict(run) for run in payload["runs"]],
            from_cache=from_cache,
        )


def simulate_session(spec):
    """Simulate one session end to end; returns a :class:`SessionResult`.

    Pure function of the spec: same spec, same result, on any worker.
    """
    from repro.apps import run_pipeline

    records = run_pipeline(spec.to_config())
    runs = [
        {fieldname: getattr(run, fieldname) for fieldname in STAGE_FIELDS}
        for run in records
    ]
    return SessionResult(spec=spec, runs=runs)


def simulate_session_payload(payload):
    """Dict-in/dict-out wrapper of :func:`simulate_session`.

    Top-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference for worker processes.
    """
    result = simulate_session(SessionSpec.from_dict(payload))
    return result.to_dict()
