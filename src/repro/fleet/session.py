"""One fleet session: a concrete, serializable simulation unit.

A :class:`SessionSpec` is the fully-resolved form of one sampled device
— everything :func:`simulate_session` needs, as plain JSON-able values,
so it can cross a process boundary to a worker and serve as the content
hash for the on-disk result cache. A :class:`SessionResult` carries the
per-iteration stage latencies back, equally JSON-able, so cached and
freshly-simulated sessions are indistinguishable bit for bit.
"""

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.core import PipelineRun, RunCollection

#: Stage fields copied between PipelineRun and the serialized form.
STAGE_FIELDS = ("capture_us", "pre_us", "inference_us", "post_us", "other_us")


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines one session's measurements."""

    session_id: int
    soc: str
    model_key: str
    dtype: str
    context: str
    target: str
    runs: int
    seed: int
    ambient_celsius: float
    #: ``None`` or ``(count, target)`` of background inference jobs.
    background: tuple
    #: Per-call FastRPC fault probability (chaos experiments); 0 = off.
    fault_rate: float = 0.0

    def to_config(self):
        """The equivalent :class:`~repro.apps.harness.PipelineConfig`."""
        from repro.apps import PipelineConfig

        return PipelineConfig(
            model_key=self.model_key,
            dtype=self.dtype,
            context=self.context,
            target=self.target,
            runs=self.runs,
            soc=self.soc,
            seed=self.seed,
            ambient_celsius=self.ambient_celsius,
            background=self.background,
            fault_rate=self.fault_rate,
        )

    def to_dict(self):
        payload = asdict(self)
        if not payload["fault_rate"]:
            # Omit the zero default so fault-free specs hash — and hence
            # cache — exactly as they did before faults existed.
            del payload["fault_rate"]
        return payload

    @classmethod
    def from_dict(cls, payload):
        cleaned = dict(payload)
        if cleaned.get("background") is not None:
            cleaned["background"] = tuple(cleaned["background"])
        return cls(**cleaned)

    def digest(self):
        """Content hash of the spec — the result-cache key.

        Canonical JSON (sorted keys) so the digest is stable across
        Python versions and dict insertion orders.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class SessionResult:
    """Per-iteration stage latencies of one simulated session.

    A *failed* session — one whose simulation raised instead of
    completing (e.g. an un-recovered injected fault on a vendor
    runtime) — carries a structured ``error`` dict and an empty ``runs``
    list; aggregation skips it, the cache never stores it.
    """

    spec: SessionSpec
    #: One dict per iteration, keys :data:`STAGE_FIELDS`, simulated µs.
    runs: list
    from_cache: bool = False
    #: Graceful-degradation summary (see
    #: :meth:`repro.faults.DegradationReport.summary`), or ``None`` when
    #: the session saw no faults.
    degradation: dict = None
    #: ``{"type", "message", "attempts"}`` when the session failed.
    error: dict = None

    @property
    def ok(self):
        return self.error is None

    @property
    def cold_run(self):
        """The first (cold-start) iteration."""
        return self.runs[0]

    @property
    def steady_runs(self):
        """Iterations after the cold start."""
        return self.runs[1:]

    @staticmethod
    def total_us(run):
        return sum(run[fieldname] for fieldname in STAGE_FIELDS)

    @staticmethod
    def tax_us(run):
        return SessionResult.total_us(run) - run["inference_us"]

    def to_collection(self):
        """A :class:`~repro.core.RunCollection` view for existing analyses."""
        collection = RunCollection(
            name=f"fleet:{self.spec.session_id}:{self.spec.model_key}"
        )
        for run in self.runs:
            collection.add(PipelineRun(**{
                fieldname: run[fieldname] for fieldname in STAGE_FIELDS
            }))
        return collection

    def to_dict(self):
        payload = {"spec": self.spec.to_dict(), "runs": self.runs}
        if self.degradation is not None:
            payload["degradation"] = self.degradation
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload, from_cache=False):
        return cls(
            spec=SessionSpec.from_dict(payload["spec"]),
            runs=[dict(run) for run in payload["runs"]],
            from_cache=from_cache,
            degradation=payload.get("degradation"),
            error=payload.get("error"),
        )


def session_payload_digest(payload):
    """sha256 content hash of a session-result payload.

    Covers the result content (spec, runs, degradation) and excludes
    bookkeeping (``from_cache``, error attempts), so a cached payload
    and a fresh re-simulation of the same spec hash identically —
    JSON round-trips floats exactly. The fleet runner's cache
    verification (``REPRO_SANITIZE=1`` / ``verify_cache=True``)
    compares these digests to prove a cache hit could not have changed
    fleet percentiles.
    """
    canonical = {
        key: payload[key]
        for key in ("spec", "runs", "degradation")
        if payload.get(key) is not None
    }
    encoded = json.dumps(canonical, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def simulate_session(spec):
    """Simulate one session end to end; returns a :class:`SessionResult`.

    Pure function of the spec: same spec, same result, on any worker.
    Raises whatever the simulation raises — an un-recovered injected
    fault propagates to the caller; :func:`simulate_session_payload`
    is the exception-capturing form the fleet runner uses.
    """
    from repro.apps import run_pipeline_with_rig

    records, _sim, _soc, _kernel, packaging = run_pipeline_with_rig(
        spec.to_config()
    )
    runs = [
        {fieldname: getattr(run, fieldname) for fieldname in STAGE_FIELDS}
        for run in records
    ]
    degradation = None
    report = getattr(packaging.session, "degradation", None)
    if report is not None:
        summary = report.summary()
        if (summary["faults"] or summary["retries"] or summary["fallbacks"]
                or summary["compile_fallback"]):
            degradation = summary
    return SessionResult(spec=spec, runs=runs, degradation=degradation)


def simulate_session_payload(payload):
    """Dict-in/dict-out wrapper of :func:`simulate_session`.

    Top-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference for worker processes. Never raises: a failed
    simulation comes back as a structured error payload, so one dying
    session cannot take the whole fleet down with it.
    """
    spec = SessionSpec.from_dict(payload)
    try:
        result = simulate_session(spec)
    except Exception as exc:  # noqa: BLE001 - fleet boundary
        return {
            "spec": spec.to_dict(),
            "runs": [],
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    return result.to_dict()
