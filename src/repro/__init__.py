"""AI Tax in Mobile SoCs (ISPASS 2021) — reproduction library.

The public API re-exports the pieces a downstream user needs most: the
pipeline harness, the AI-tax analyses, the model zoo, and the experiment
registry. Subsystems (simulator, SoC, OS, frameworks, processing,
capture) are importable as subpackages; see the README architecture map.
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import (
    PipelineRun,
    RunCollection,
    StageBreakdown,
    VariabilityStats,
    ai_tax_fraction,
    breakdown,
    compare_contexts,
)
from repro.experiments import run_experiment
from repro.models import MODEL_CARDS, load_model, model_card
from repro.soc import SOC_SPECS, make_soc

__version__ = "1.0.0"

__all__ = [
    "PipelineConfig",
    "run_pipeline",
    "PipelineRun",
    "RunCollection",
    "StageBreakdown",
    "VariabilityStats",
    "ai_tax_fraction",
    "breakdown",
    "compare_contexts",
    "run_experiment",
    "MODEL_CARDS",
    "load_model",
    "model_card",
    "SOC_SPECS",
    "make_soc",
    "__version__",
]
