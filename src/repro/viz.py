"""Terminal visualization of experiment results.

The paper communicates through figures; this module renders their
closest pure-text equivalents so `python -m repro experiment fig5
--chart` (and the examples) can show shapes, not just tables:

* :func:`bar_chart` — horizontal bars (Figs. 3, 5, and friends);
* :func:`grouped_bars` — stacked per-stage bars (Figs. 4, 9, 10);
* :func:`histogram` — latency distributions (Fig. 11);
* :func:`timeline_strip` — per-track utilization heat strips (Fig. 6);
* :func:`line_series` — amortization curves (Fig. 8).

Everything returns a string; nothing prints or depends on a display.
"""

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SHADES = " ░▒▓█"


def _bar(value, scale, width):
    """A left-aligned bar of ``value`` where ``scale`` fills ``width``."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * min(full, width) + partial


def bar_chart(items, width=40, unit="ms", title=None):
    """Horizontal bar chart from ``[(label, value), ...]``."""
    items = list(items)
    if not items:
        return "(no data)"
    label_width = max(len(str(label)) for label, _value in items)
    top = max(value for _label, value in items) or 1.0
    lines = [title] if title else []
    for label, value in items:
        bar = _bar(value, top, width)
        lines.append(
            f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:,.2f} {unit}"
        )
    return "\n".join(lines)


def grouped_bars(groups, stages, width=40, unit="ms", title=None):
    """Stacked per-stage bars.

    ``groups`` is ``[(label, [v1, v2, ...]), ...]`` with one value per
    entry in ``stages``. Each stage gets a distinct fill character so a
    breakdown reads like the paper's stacked figures.
    """
    fills = "█▓▒░▞▚"
    groups = list(groups)
    if not groups:
        return "(no data)"
    label_width = max(len(str(label)) for label, _values in groups)
    top = max(sum(values) for _label, values in groups) or 1.0
    lines = [title] if title else []
    legend = "  ".join(
        f"{fills[index % len(fills)]} {stage}"
        for index, stage in enumerate(stages)
    )
    lines.append(legend)
    for label, values in groups:
        bar = ""
        for index, value in enumerate(values):
            cells = int(round(value / top * width))
            bar += fills[index % len(fills)] * cells
        total = sum(values)
        lines.append(
            f"{str(label).ljust(label_width)} |{bar[:width].ljust(width)}| "
            f"{total:,.2f} {unit}"
        )
    return "\n".join(lines)


def histogram(values, bins=12, width=40, unit="ms", title=None):
    """Vertical-count histogram of a latency sample."""
    values = sorted(values)
    if not values:
        return "(no data)"
    low, high = values[0], values[-1]
    if high == low:
        return f"all {len(values)} samples at {low:,.2f} {unit}"
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span))
        counts[index] += 1
    top = max(counts)
    lines = [title] if title else []
    for index, count in enumerate(counts):
        lo = low + index * span
        bar = _bar(count, top, width)
        lines.append(f"{lo:10,.2f} {unit} |{bar.ljust(width)}| {count}")
    return "\n".join(lines)


def timeline_strip(utilization, label="", width=None):
    """One trace track as a shade strip (0 -> space, 1 -> full block)."""
    if width is not None and len(utilization) > width:
        # Downsample by averaging consecutive buckets.
        factor = len(utilization) / width
        utilization = [
            sum(utilization[int(i * factor): max(int(i * factor) + 1,
                                                 int((i + 1) * factor))])
            / max(1, len(utilization[int(i * factor): max(int(i * factor) + 1,
                                                          int((i + 1) * factor))]))
            for i in range(width)
        ]
    cells = "".join(
        _SHADES[min(len(_SHADES) - 1, int(max(0.0, min(1.0, value))
                                          * (len(_SHADES) - 1) + 0.5))]
        for value in utilization
    )
    return f"{label:>6s} |{cells}|"


def profile_strips(timelines, order=None, width=60):
    """Fig.-6-style multi-track profile from ``{track: [util, ...]}``."""
    tracks = order if order is not None else sorted(timelines)
    return "\n".join(
        timeline_strip(timelines[track], label=track, width=width)
        for track in tracks
        if track in timelines
    )


def line_series(xs, ys, width=50, height=12, title=None,
                x_label="x", y_label="y"):
    """A dot plot of ``ys`` against ``xs`` on a character grid."""
    if not xs or len(xs) != len(ys):
        return "(no data)"
    lo_x, hi_x = min(xs), max(xs)
    lo_y, hi_y = min(ys), max(ys)
    span_x = (hi_x - lo_x) or 1.0
    span_y = (hi_y - lo_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - lo_x) / span_x * (width - 1))
        row = height - 1 - int((y - lo_y) / span_y * (height - 1))
        grid[row][col] = "o"
    lines = [title] if title else []
    for index, row in enumerate(grid):
        tick = hi_y - index * span_y / (height - 1)
        lines.append(f"{tick:10,.2f} |{''.join(row)}|")
    lines.append(" " * 11 + f"{lo_x:<{width // 2},.0f}{hi_x:>{width // 2},.0f}")
    lines.append(" " * 11 + f"({x_label} -> ; {y_label} ^)")
    return "\n".join(lines)
