"""Pre- and post-processing algorithms (paper §II-B, §II-E).

Every algorithm the paper names — bitmap format conversion, bilinear
scaling, center crop, normalization, rotation, type conversion /
quantization, topK, dequantization, mask flattening, keypoint decoding,
bounding-box decoding + NMS, and BERT tokenization — is implemented for
real in numpy *and* paired with an analytic cost model
(:mod:`repro.processing.costs`) that the simulator charges as CPU work.

The cost models distinguish a ``native`` implementation (vectorized
TFLite support library) from a ``java`` one (the per-pixel loops in the
example Android apps), because the gap between those two is part of the
algorithmic AI tax the paper measures.
"""

from repro.processing.costs import (
    IMPL_JAVA,
    IMPL_NATIVE,
    bitmap_convert_cost_us,
    crop_cost_us,
    dequantize_cost_us,
    keypoint_decode_cost_us,
    mask_flatten_cost_us,
    nms_cost_us,
    normalize_cost_us,
    quantize_cost_us,
    random_input_cost_us,
    resize_cost_us,
    rotate_cost_us,
    tokenize_cost_us,
    topk_cost_us,
)
from repro.processing.image import (
    bilinear_resize,
    center_crop,
    normalize,
    quantize_to_uint8,
    rotate90,
    to_float,
    yuv_nv21_to_argb,
)
from repro.processing.pipeline import (
    PostprocessPlan,
    Preprocessor,
    build_postprocess_plan,
    build_preprocessor,
)
from repro.processing.post import (
    decode_boxes,
    decode_keypoints,
    dequantize_scores,
    flatten_mask,
    non_max_suppression,
    top_k,
)
from repro.processing.quantization import QuantParams, dequantize, quantize
from repro.processing.text import compute_logits, wordpiece_tokenize

__all__ = [
    "IMPL_JAVA",
    "IMPL_NATIVE",
    "bitmap_convert_cost_us",
    "crop_cost_us",
    "dequantize_cost_us",
    "keypoint_decode_cost_us",
    "mask_flatten_cost_us",
    "nms_cost_us",
    "normalize_cost_us",
    "quantize_cost_us",
    "random_input_cost_us",
    "resize_cost_us",
    "rotate_cost_us",
    "tokenize_cost_us",
    "topk_cost_us",
    "bilinear_resize",
    "center_crop",
    "normalize",
    "quantize_to_uint8",
    "rotate90",
    "to_float",
    "yuv_nv21_to_argb",
    "PostprocessPlan",
    "Preprocessor",
    "build_postprocess_plan",
    "build_preprocessor",
    "decode_boxes",
    "decode_keypoints",
    "dequantize_scores",
    "flatten_mask",
    "non_max_suppression",
    "top_k",
    "QuantParams",
    "dequantize",
    "quantize",
    "compute_logits",
    "wordpiece_tokenize",
]
