"""Post-processing kernels (paper §II-E).

Image classification needs only topK (plus dequantization for quantized
models); segmentation flattens a per-pixel class mask; pose estimation
decodes keypoints from heatmaps + offsets; object detection decodes
anchor boxes and runs non-max suppression.
"""

import numpy as np

from repro.processing.quantization import dequantize


def top_k(scores, k=5, labels=None):
    """Indices (or labels) and scores of the k best classes, descending."""
    scores = np.asarray(scores).reshape(-1)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.size)
    order = np.argpartition(-scores, k - 1)[:k]
    order = order[np.argsort(-scores[order], kind="stable")]
    if labels is not None:
        return [(labels[index], float(scores[index])) for index in order]
    return [(int(index), float(scores[index])) for index in order]


def dequantize_scores(quantized, params):
    """Dequantize a quantized model's output tensor (Table I's '*')."""
    return dequantize(quantized, params)


def flatten_mask(logits):
    """Segmentation "mask flattening": per-pixel argmax to a flat mask.

    ``logits`` is (H, W, classes); returns a flat int32 array of length
    H*W as the DeepLab demo app produces for rendering.
    """
    logits = np.asarray(logits)
    if logits.ndim != 3:
        raise ValueError(f"expected (H, W, C) logits, got shape {logits.shape}")
    return np.argmax(logits, axis=-1).astype(np.int32).reshape(-1)


def decode_keypoints(heatmaps, offsets, output_stride=16):
    """PoseNet keypoint decoding.

    For each of K keypoints: take the argmax heatmap cell, then refine
    with the (dy, dx) offset vectors. Returns (K, 3) array of
    ``(y, x, score)`` in input-image pixel coordinates.
    """
    heatmaps = np.asarray(heatmaps)
    offsets = np.asarray(offsets)
    grid_h, grid_w, keypoints = heatmaps.shape
    if offsets.shape != (grid_h, grid_w, 2 * keypoints):
        raise ValueError(
            f"offsets shape {offsets.shape} does not match heatmaps "
            f"{heatmaps.shape}"
        )
    result = np.zeros((keypoints, 3), dtype=np.float32)
    for index in range(keypoints):
        plane = heatmaps[:, :, index]
        flat = int(np.argmax(plane))
        cell_y, cell_x = divmod(flat, grid_w)
        dy = offsets[cell_y, cell_x, index]
        dx = offsets[cell_y, cell_x, index + keypoints]
        result[index, 0] = cell_y * output_stride + dy
        result[index, 1] = cell_x * output_stride + dx
        result[index, 2] = plane[cell_y, cell_x]
    return result


def decode_boxes(box_encodings, anchors, scale_factors=(10.0, 10.0, 5.0, 5.0)):
    """SSD box decoding: anchor-relative encodings to corner boxes.

    ``box_encodings`` and ``anchors`` are (N, 4) in
    ``(ty, tx, th, tw)`` / ``(cy, cx, h, w)`` form; returns (N, 4)
    ``(ymin, xmin, ymax, xmax)``.
    """
    box_encodings = np.asarray(box_encodings, dtype=np.float32)
    anchors = np.asarray(anchors, dtype=np.float32)
    if box_encodings.shape != anchors.shape or box_encodings.shape[-1] != 4:
        raise ValueError("box encodings and anchors must both be (N, 4)")
    ty, tx, th, tw = (box_encodings[:, i] / scale_factors[i] for i in range(4))
    cy = ty * anchors[:, 2] + anchors[:, 0]
    cx = tx * anchors[:, 3] + anchors[:, 1]
    h = np.exp(th) * anchors[:, 2]
    w = np.exp(tw) * anchors[:, 3]
    return np.stack([cy - h / 2, cx - w / 2, cy + h / 2, cx + w / 2], axis=1)


def _iou(box, others):
    inter_ymin = np.maximum(box[0], others[:, 0])
    inter_xmin = np.maximum(box[1], others[:, 1])
    inter_ymax = np.minimum(box[2], others[:, 2])
    inter_xmax = np.minimum(box[3], others[:, 3])
    inter = np.clip(inter_ymax - inter_ymin, 0, None) * np.clip(
        inter_xmax - inter_xmin, 0, None
    )
    area_box = (box[2] - box[0]) * (box[3] - box[1])
    area_others = (others[:, 2] - others[:, 0]) * (others[:, 3] - others[:, 1])
    union = area_box + area_others - inter
    return np.where(union > 0, inter / union, 0.0)


def non_max_suppression(boxes, scores, iou_threshold=0.5, max_detections=10):
    """Greedy NMS; returns indices of kept boxes, best first."""
    boxes = np.asarray(boxes, dtype=np.float32)
    scores = np.asarray(scores, dtype=np.float32).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError("boxes and scores disagree on N")
    order = list(np.argsort(-scores, kind="stable"))
    keep = []
    while order and len(keep) < max_detections:
        best = order.pop(0)
        keep.append(int(best))
        if not order:
            break
        remaining = np.array(order)
        ious = _iou(boxes[best], boxes[remaining])
        order = [
            int(index)
            for index, iou in zip(remaining, ious)
            if iou <= iou_threshold
        ]
    return keep
