"""Analytic cost models for processing kernels.

Costs are **reference microseconds** (big SD845 core at max frequency;
see :mod:`repro.soc.params`) as a function of data volume. Two
implementation tiers exist because the paper's app measurements run the
TFLite *Java* example-app loops while benchmark pre-processing (where it
happens at all) is vectorized native code:

* ``native`` — NEON-vectorized TFLite support library routines;
* ``java`` — per-pixel managed-code loops of the example apps.

The ``random_input_cost_us`` model encodes the standard-library quirk
the paper calls out in §IV-A: against libc++, generating random *reals*
is significantly faster than random *integers*; against libstdc++ the
behaviour inverts.
"""

from repro.sim import units

IMPL_NATIVE = "native"
IMPL_JAVA = "java"

#: Per-element costs in nanoseconds, (native, java).
_NS_PER_ELEM = {
    "bitmap_convert": (6.0, 20.0),
    "resize": (4.0, 15.0),
    "crop": (0.8, 3.0),
    "normalize": (1.2, 8.0),
    "rotate": (2.5, 15.0),
    "quantize": (1.5, 5.0),
    "dequantize": (1.5, 5.0),
}

#: Fixed per-call overhead (us): JNI crossing + allocation for Java.
_CALL_OVERHEAD_US = {IMPL_NATIVE: 2.0, IMPL_JAVA: 40.0}


def _per_elem(task, elements, impl):
    native_ns, java_ns = _NS_PER_ELEM[task]
    ns = native_ns if impl == IMPL_NATIVE else java_ns
    return _CALL_OVERHEAD_US[impl] + units.ns(elements * ns)


def bitmap_convert_cost_us(width, height, impl=IMPL_JAVA):
    """YUV NV21 -> ARGB conversion over the full camera frame."""
    return _per_elem("bitmap_convert", width * height, impl)


def resize_cost_us(out_hw, channels=3, impl=IMPL_NATIVE):
    """Bilinear scaling; quadratic in output size (paper §II-B)."""
    out_h, out_w = out_hw
    return _per_elem("resize", out_h * out_w * channels, impl)


def crop_cost_us(out_hw, channels=3, impl=IMPL_NATIVE):
    out_h, out_w = out_hw
    return _per_elem("crop", out_h * out_w * channels, impl)


def normalize_cost_us(hw, channels=3, impl=IMPL_NATIVE):
    h, w = hw
    return _per_elem("normalize", h * w * channels, impl)


def rotate_cost_us(hw, channels=3, impl=IMPL_NATIVE):
    """Rotation scales quadratically with image size (paper §II-B)."""
    h, w = hw
    return _per_elem("rotate", h * w * channels, impl)


def quantize_cost_us(elements, impl=IMPL_NATIVE):
    return _per_elem("quantize", elements, impl)


def dequantize_cost_us(elements, impl=IMPL_NATIVE):
    return _per_elem("dequantize", elements, impl)


def topk_cost_us(classes, k=5):
    """Partial selection over the class scores (cheap: sub-ms)."""
    return 3.0 + classes * 0.002 + k * 0.05


def mask_flatten_cost_us(hw, classes):
    """Per-pixel argmax over class logits (DeepLab post-processing)."""
    h, w = hw
    return 10.0 + h * w * classes * 0.001


def keypoint_decode_cost_us(grid_hw, keypoints):
    """PoseNet heatmap argmax + offset refinement + image mapping."""
    grid_h, grid_w = grid_hw
    return 25.0 + grid_h * grid_w * keypoints * 0.004 + keypoints * 1.5


def nms_cost_us(anchors, detections=10):
    """SSD box decode + greedy NMS over all anchors."""
    return 40.0 + anchors * 0.015 + detections * anchors * 0.002


def tokenize_cost_us(text_chars, impl=IMPL_JAVA):
    """WordPiece tokenization: dictionary probes per character."""
    per_char_ns = 120.0 if impl == IMPL_JAVA else 45.0
    return _CALL_OVERHEAD_US[impl] + units.ns(text_chars * per_char_ns)


def random_input_cost_us(elements, dtype, stdlib="libc++"):
    """Benchmark "data capture": std::uniform_*_distribution fills.

    The paper found libc++ generates reals much faster than integers
    while libstdc++ shows the exact opposite — a fallacy of using random
    generation as a stand-in for data capture.
    """
    rates = {
        # ns per element for (real, integer) generation.
        "libc++": (3.0, 16.0),
        "libstdc++": (14.0, 4.0),
    }
    try:
        real_ns, int_ns = rates[stdlib]
    except KeyError:
        raise ValueError(f"unknown stdlib {stdlib!r}") from None
    ns = int_ns if dtype in ("int8", "uint8", "int32") else real_ns
    return 1.0 + units.ns(elements * ns)
