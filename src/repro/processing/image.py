"""Image pre-processing kernels (real numpy implementations).

These mirror the operations the paper catalogues in §II-B for the
TFLite Android example apps: YUV NV21 camera frames are converted to
ARGB, scaled with bilinear interpolation, center-cropped, normalized to
zero mean / unit variance, rotated to match sensor orientation, and
type-converted (quantized) to the model's input dtype.
"""

import numpy as np


def yuv_nv21_to_argb(yuv, height, width):
    """Convert an NV21 byte buffer to an (H, W, 3) uint8 RGB image.

    NV21 layout: ``height*width`` luma bytes followed by interleaved
    V/U chroma at quarter resolution. Uses the integer BT.601 math of
    the Android sample code.
    """
    yuv = np.asarray(yuv, dtype=np.uint8)
    expected = height * width * 3 // 2
    if yuv.size != expected:
        raise ValueError(
            f"NV21 buffer for {width}x{height} needs {expected} bytes, "
            f"got {yuv.size}"
        )
    luma = yuv[: height * width].reshape(height, width).astype(np.int32)
    chroma = yuv[height * width:].reshape(height // 2, width // 2, 2)
    v_plane = chroma[..., 0].astype(np.int32) - 128
    u_plane = chroma[..., 1].astype(np.int32) - 128
    # Upsample chroma to full resolution (nearest neighbour).
    v_full = np.repeat(np.repeat(v_plane, 2, axis=0), 2, axis=1)
    u_full = np.repeat(np.repeat(u_plane, 2, axis=0), 2, axis=1)
    red = luma + ((1436 * v_full) >> 10)
    green = luma - ((352 * u_full + 731 * v_full) >> 10)
    blue = luma + ((1814 * u_full) >> 10)
    rgb = np.stack([red, green, blue], axis=-1)
    return np.clip(rgb, 0, 255).astype(np.uint8)


def bilinear_resize(image, out_hw):
    """Resize an (H, W, C) image with bilinear interpolation.

    Uses the half-pixel-center convention of TensorFlow's
    ``resize_bilinear`` with ``half_pixel_centers=True``.
    """
    image = np.asarray(image)
    in_h, in_w = image.shape[:2]
    out_h, out_w = out_hw
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"bad output size {out_hw}")
    if (in_h, in_w) == (out_h, out_w):
        return image.astype(np.float32, copy=True)

    scale_y = in_h / out_h
    scale_x = in_w / out_w
    ys = (np.arange(out_h) + 0.5) * scale_y - 0.5
    xs = (np.arange(out_w) + 0.5) * scale_x - 0.5
    y0 = np.clip(np.floor(ys), 0, in_h - 1).astype(np.int64)
    x0 = np.clip(np.floor(xs), 0, in_w - 1).astype(np.int64)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = np.clip(ys - y0, 0.0, 1.0)[:, None, None]
    wx = np.clip(xs - x0, 0.0, 1.0)[None, :, None]

    img = image.astype(np.float32)
    if img.ndim == 2:
        img = img[:, :, None]
        squeeze = True
    else:
        squeeze = False
    top = img[y0][:, x0] * (1 - wx) + img[y0][:, x1] * wx
    bottom = img[y1][:, x0] * (1 - wx) + img[y1][:, x1] * wx
    out = top * (1 - wy) + bottom * wy
    return out[..., 0] if squeeze else out


def center_crop(image, crop_hw):
    """Crop the central ``crop_hw`` region of an (H, W, C) image."""
    image = np.asarray(image)
    in_h, in_w = image.shape[:2]
    crop_h, crop_w = crop_hw
    if crop_h > in_h or crop_w > in_w:
        raise ValueError(
            f"crop {crop_hw} larger than image {(in_h, in_w)}"
        )
    top = (in_h - crop_h) // 2
    left = (in_w - crop_w) // 2
    return image[top: top + crop_h, left: left + crop_w]


def normalize(image, mean=127.5, std=127.5):
    """Zero-mean unit-variance normalization (per the TFLite apps)."""
    if std == 0:
        raise ValueError("std must be non-zero")
    return (np.asarray(image, dtype=np.float32) - mean) / std


def rotate90(image, turns=1):
    """Rotate by multiples of 90 degrees (sensor orientation fix-up)."""
    return np.rot90(np.asarray(image), k=-turns % 4, axes=(0, 1))


def to_float(image, scale=1.0 / 255.0):
    """Raw byte image to float in [0, 1]."""
    return np.asarray(image, dtype=np.float32) * scale


def quantize_to_uint8(image, scale=1.0, zero_point=0):
    """Type conversion for quantized models (float -> uint8)."""
    values = np.round(np.asarray(image, dtype=np.float32) / scale) + zero_point
    return np.clip(values, 0, 255).astype(np.uint8)
