"""Pre/post-processing plans derived from Table-I model cards.

A plan is a list of named steps with reference-us costs — what the
simulator charges as CPU work — and, where meaningful, a real numpy
execution path used by the examples and tests.

Context matters (paper Figs. 3/4): a *benchmark* feeds random tensors
directly into the interpreter, so its pre-processing is nearly empty,
while an *app* pays bitmap conversion and the full scale/crop/normalize
chain in managed code.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.processing import costs
from repro.processing.image import (
    bilinear_resize,
    center_crop,
    normalize,
    quantize_to_uint8,
    rotate90,
)
from repro.processing.text import wordpiece_tokenize


@dataclass(frozen=True)
class Step:
    """One processing step: label + simulated cost."""

    name: str
    cost_us: float


@dataclass
class Preprocessor:
    """Ordered pre-processing steps for one (model, context) pair."""

    model_key: str
    context: str
    input_hw: tuple
    dtype: str
    steps: list = field(default_factory=list)
    rotate_turns: int = 0

    @property
    def cost_us(self):
        return sum(step.cost_us for step in self.steps)

    def step_names(self):
        return [step.name for step in self.steps]

    def run(self, frame):
        """Execute the real pipeline on an (H, W, 3) uint8 RGB frame."""
        image = np.asarray(frame)
        if self.rotate_turns:
            image = rotate90(image, self.rotate_turns)
        names = set(self.step_names())
        if "scale" in names:
            # Resize so the short side matches, then center-crop (the
            # Inception-style pre-processing of the TFLite apps).
            target_h, target_w = self.input_hw
            if "crop" in names:
                scale = max(
                    target_h / image.shape[0], target_w / image.shape[1]
                )
                inter_hw = (
                    max(target_h, int(round(image.shape[0] * scale))),
                    max(target_w, int(round(image.shape[1] * scale))),
                )
                image = bilinear_resize(image, inter_hw)
                image = center_crop(image, (target_h, target_w))
            else:
                image = bilinear_resize(image, (target_h, target_w))
        if self.dtype == "int8":
            return quantize_to_uint8(image)
        if "normalize" in names:
            return normalize(image)
        return np.asarray(image, dtype=np.float32)


@dataclass
class PostprocessPlan:
    """Ordered post-processing steps for one (model, context) pair."""

    model_key: str
    context: str
    steps: list = field(default_factory=list)

    @property
    def cost_us(self):
        return sum(step.cost_us for step in self.steps)

    def step_names(self):
        return [step.name for step in self.steps]


#: Apps whose demo code path does pixel work natively rather than in
#: managed loops. The DeepLab demo scales via Bitmap.createScaledBitmap
#: (native/HW path), which is why the paper measures its pre-processing
#: at only ~1% of runtime despite the 513x513 input.
PRE_IMPL_OVERRIDES = {"deeplab_v3": costs.IMPL_NATIVE}


def build_preprocessor(card, model, context="app", source_hw=(480, 640),
                       impl=None, text_chars=220):
    """Build the pre-processing plan for a model card.

    ``context`` is ``"app"`` (camera frames, managed-code loops) or
    ``"benchmark"`` (random tensors, native code).
    """
    if context not in ("app", "benchmark"):
        raise ValueError(f"unknown context {context!r}")
    if impl is None:
        if context == "app":
            impl = PRE_IMPL_OVERRIDES.get(card.key, costs.IMPL_JAVA)
        else:
            impl = costs.IMPL_NATIVE

    if model.task == "language_processing":
        input_hw = (1, 1)
    else:
        input_hw = model.input_spec.shape[:2]
    plan = Preprocessor(
        model_key=card.key, context=context, input_hw=input_hw,
        dtype=model.dtype,
    )
    steps = plan.steps

    if "tokenization" in card.pre_tasks:
        steps.append(Step("tokenization", costs.tokenize_cost_us(text_chars, impl)))
        return plan

    if context == "app":
        height, width = source_hw
        steps.append(
            Step("bitmap_convert", costs.bitmap_convert_cost_us(width, height, impl))
        )
    if "rotate" in card.pre_tasks:
        plan.rotate_turns = 1
        steps.append(Step("rotate", costs.rotate_cost_us(input_hw, impl=impl)))
    if "scale" in card.pre_tasks and context == "app":
        steps.append(Step("scale", costs.resize_cost_us(input_hw, impl=impl)))
    if "crop" in card.pre_tasks and context == "app":
        steps.append(Step("crop", costs.crop_cost_us(input_hw, impl=impl)))
    if "normalize" in card.pre_tasks:
        if model.dtype == "int8":
            # Quantized input: bytes are range-adjusted, not float
            # normalized — the type-conversion task of §II-B.
            steps.append(
                Step(
                    "type_conversion",
                    costs.quantize_cost_us(model.input_spec.numel, impl=impl),
                )
            )
        else:
            steps.append(
                Step("normalize", costs.normalize_cost_us(input_hw, impl=impl))
            )
    return plan


def build_postprocess_plan(card, model, context="app", impl=None):
    """Build the post-processing plan for a model card."""
    if impl is None:
        impl = costs.IMPL_JAVA if context == "app" else costs.IMPL_NATIVE
    plan = PostprocessPlan(model_key=card.key, context=context)
    steps = plan.steps
    metadata = model.metadata

    for task in card.post_tasks_for(model.dtype):
        if task == "topK":
            steps.append(Step("topK", costs.topk_cost_us(model.output_features)))
        elif task == "dequantization":
            steps.append(
                Step(
                    "dequantization",
                    costs.dequantize_cost_us(model.output_features, impl=impl),
                )
            )
        elif task == "mask flattening":
            resolution = metadata.get("resolution", 513)
            classes = metadata.get("classes", 21)
            steps.append(
                Step(
                    "mask_flattening",
                    costs.mask_flatten_cost_us((resolution, resolution), classes),
                )
            )
        elif task == "calculate keypoints":
            grid = metadata.get("heatmap_size", (14, 14))
            keypoints = metadata.get("keypoints", 17)
            steps.append(
                Step(
                    "calculate_keypoints",
                    costs.keypoint_decode_cost_us(grid, keypoints),
                )
            )
        elif task == "compute logits":
            seq_len = metadata.get("seq_len", 384)
            steps.append(Step("compute_logits", 8.0 + seq_len * 0.02))
        else:
            raise ValueError(f"unknown post-processing task {task!r}")

    # Detection apps additionally decode anchors and run NMS to draw
    # boxes (paper §IV-A: "bounding box tracking").
    if card.task == "object_detection" and context == "app":
        anchors = metadata.get("anchors", 1917)
        steps.append(Step("box_decode_nms", costs.nms_cost_us(anchors)))
    return plan


def tokenize_for_model(text, max_len=384):
    """Real tokenization path used by examples."""
    return wordpiece_tokenize(text, max_len=max_len)
