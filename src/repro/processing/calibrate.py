"""Calibration harness: real kernel timings vs the cost models.

The simulator charges pre-processing time from analytic per-element
models (:mod:`repro.processing.costs`). This harness times the *real*
numpy implementations on the host and reports measured ns/element next
to the model's ``native`` coefficients, so the constants can be sanity-
checked or re-derived on new hardware.

Host numpy is not a Snapdragon, so agreement is not expected to be
exact; what matters is that the measured values are the right order of
magnitude and preserve the cost model's *ordering* (bitmap conversion >
resize > normalize > crop per element).

Run:  python -m repro.processing.calibrate
"""

import time

import numpy as np

from repro.processing import costs
from repro.processing.image import (
    bilinear_resize,
    center_crop,
    normalize,
    quantize_to_uint8,
    rotate90,
    yuv_nv21_to_argb,
)
from repro.sim import units


def _time_kernel(func, *args, repeats=5):
    """Median wall time of ``func(*args)`` over ``repeats`` runs (us)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func(*args)
        samples.append((time.perf_counter() - start) * 1e6)
    samples.sort()
    return samples[len(samples) // 2]


def measure_host_kernels(height=480, width=640, out_side=224, seed=0):
    """Measured (kernel, elements, us, ns_per_element) rows on this host."""
    rng = np.random.default_rng(seed)
    nv21 = rng.integers(0, 256, size=height * width * 3 // 2).astype(np.uint8)
    rgb = rng.integers(0, 256, size=(height, width, 3)).astype(np.uint8)
    small = rng.integers(0, 256, size=(out_side, out_side, 3)).astype(np.uint8)

    cases = [
        ("bitmap_convert", height * width,
         lambda: yuv_nv21_to_argb(nv21, height, width)),
        ("resize", out_side * out_side * 3,
         lambda: bilinear_resize(rgb, (out_side, out_side))),
        ("crop", out_side * out_side * 3,
         lambda: center_crop(rgb, (out_side, out_side)).copy()),
        ("normalize", out_side * out_side * 3, lambda: normalize(small)),
        ("rotate", out_side * out_side * 3, lambda: rotate90(small).copy()),
        ("quantize", out_side * out_side * 3,
         lambda: quantize_to_uint8(small.astype(np.float32))),
    ]
    rows = []
    for name, elements, thunk in cases:
        elapsed_us = _time_kernel(thunk)
        rows.append((name, elements, elapsed_us, units.to_ns(elapsed_us) / elements))
    return rows


def compare_with_model(rows=None):
    """(kernel, measured ns/elem, model native ns/elem) triples."""
    if rows is None:
        rows = measure_host_kernels()
    model_ns = {name: pair[0] for name, pair in costs._NS_PER_ELEM.items()}
    comparison = []
    for name, _elements, _us, measured_ns in rows:
        comparison.append((name, measured_ns, model_ns.get(name)))
    return comparison


def main():
    from repro.core.report import render_table

    rows = measure_host_kernels()
    comparison = compare_with_model(rows)
    table = [
        (name, measured, model if model is not None else "-")
        for name, measured, model in comparison
    ]
    print(
        render_table(
            ("kernel", "host ns/elem", "model native ns/elem"),
            table,
            title="Pre-processing kernel calibration (host vs cost model)",
        )
    )


if __name__ == "__main__":
    main()
