"""Affine quantization helpers (uint8 <-> float)."""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters: ``real = scale * (q - zero_point)``."""

    scale: float
    zero_point: int

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not 0 <= self.zero_point <= 255:
            raise ValueError(f"zero_point out of uint8 range: {self.zero_point}")

    @classmethod
    def from_range(cls, low, high):
        """Parameters covering the real interval [low, high]."""
        if high <= low:
            raise ValueError(f"empty range [{low}, {high}]")
        scale = (high - low) / 255.0
        zero_point = int(round(-low / scale))
        return cls(scale=scale, zero_point=int(np.clip(zero_point, 0, 255)))


def quantize(values, params):
    """Real-valued array to uint8 under ``params``."""
    q = np.round(np.asarray(values, dtype=np.float32) / params.scale)
    return np.clip(q + params.zero_point, 0, 255).astype(np.uint8)


def dequantize(quantized, params):
    """uint8 array back to float32 under ``params``."""
    q = np.asarray(quantized, dtype=np.float32)
    return (q - params.zero_point) * params.scale
