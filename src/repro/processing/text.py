"""Text pre/post-processing for MobileBERT.

A greedy longest-match-first WordPiece tokenizer (the algorithm the BERT
reference implementation uses) plus SQuAD-style answer-logit
post-processing.
"""

import numpy as np

#: A compact built-in vocabulary sufficient for tests and examples.
_BASE_VOCAB = (
    "[PAD] [UNK] [CLS] [SEP] the a an and or of to in is was for on with "
    "as by at from be are were this that it he she they we you i not have "
    "has had do does did can could will would should may might must there "
    "what when where who why how which while about into over under again "
    "mobile phone soc chip hardware software benchmark model inference "
    "machine learning neural network performance latency tax time run"
).split()
_SUFFIXES = ["##s", "##ing", "##ed", "##er", "##est", "##ly", "##ness"]
_CHAR_PIECES = [c for c in "abcdefghijklmnopqrstuvwxyz0123456789"]


def default_vocab():
    """Vocabulary dict mapping token -> id."""
    pieces = list(_BASE_VOCAB) + _SUFFIXES + _CHAR_PIECES
    pieces += ["##" + c for c in _CHAR_PIECES]
    return {piece: index for index, piece in enumerate(pieces)}


def wordpiece_tokenize(text, vocab=None, max_len=384):
    """Tokenize ``text`` into ids: [CLS] pieces... [SEP], padded.

    Greedy longest-prefix matching per word; unknown segments map to
    ``[UNK]``. Returns an int32 array of length ``max_len``.
    """
    if vocab is None:
        vocab = default_vocab()
    unk = vocab["[UNK]"]
    ids = [vocab["[CLS]"]]
    for word in text.lower().split():
        word = "".join(ch for ch in word if ch.isalnum())
        if not word:
            continue
        start = 0
        pieces = []
        while start < len(word):
            end = len(word)
            piece_id = None
            while start < end:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in vocab:
                    piece_id = vocab[candidate]
                    break
                end -= 1
            if piece_id is None:
                pieces = [unk]
                break
            pieces.append(piece_id)
            start = end
        ids.extend(pieces)
        if len(ids) >= max_len - 1:
            break
    ids = ids[: max_len - 1]
    ids.append(vocab["[SEP]"])
    padded = np.zeros(max_len, dtype=np.int32)
    padded[: len(ids)] = ids
    return padded


def compute_logits(start_logits, end_logits, top_k=5, max_answer_len=30):
    """SQuAD answer-span selection from start/end logits.

    Returns a list of ``(start, end, score)`` tuples, best first —
    the "compute logits" post-processing task of Table I.
    """
    start_logits = np.asarray(start_logits, dtype=np.float32).reshape(-1)
    end_logits = np.asarray(end_logits, dtype=np.float32).reshape(-1)
    if start_logits.shape != end_logits.shape:
        raise ValueError("start/end logits must have equal length")
    seq_len = start_logits.size
    starts = np.argsort(-start_logits, kind="stable")[:top_k]
    ends = np.argsort(-end_logits, kind="stable")[:top_k]
    spans = []
    for start in starts:
        for end in ends:
            if start <= end < start + max_answer_len and end < seq_len:
                score = float(start_logits[start] + end_logits[end])
                spans.append((int(start), int(end), score))
    spans.sort(key=lambda span: -span[2])
    return spans[:top_k]
