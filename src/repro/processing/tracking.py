"""Object tracking across frames (detection post-processing, §IV-A).

The paper notes detection apps "commonly employ CPU-intensive output
transformations after every inference", naming bounding-box tracking
(dashcams) as the example. This is a real greedy IoU tracker of the
kind those apps ship: detections are associated to existing tracks by
best IoU, unmatched detections open new tracks, and tracks that miss
too many frames are retired.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.processing.post import _iou


@dataclass
class Track:
    """One tracked object."""

    track_id: int
    box: np.ndarray
    score: float
    hits: int = 1
    misses: int = 0
    history: list = field(default_factory=list)

    @property
    def confirmed(self):
        """A track is trusted after being matched in 2+ frames."""
        return self.hits >= 2


class IouTracker:
    """Greedy IoU data association across frames."""

    def __init__(self, iou_threshold=0.3, max_misses=3):
        if not 0.0 < iou_threshold < 1.0:
            raise ValueError(f"bad IoU threshold {iou_threshold}")
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self.tracks = []
        self._next_id = 1
        self.frames_processed = 0

    def update(self, boxes, scores):
        """Associate one frame's detections; returns live tracks.

        ``boxes`` is (N, 4) ``(ymin, xmin, ymax, xmax)``; ``scores`` (N,).
        """
        boxes = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
        scores = np.asarray(scores, dtype=np.float32).reshape(-1)
        if boxes.shape[0] != scores.shape[0]:
            raise ValueError("boxes and scores disagree on N")
        self.frames_processed += 1

        unmatched = list(range(boxes.shape[0]))
        # Highest-confidence tracks pick first (greedy).
        for track in sorted(self.tracks, key=lambda t: -t.score):
            if not unmatched:
                track.misses += 1
                continue
            candidates = boxes[unmatched]
            ious = _iou(track.box, candidates)
            best = int(np.argmax(ious))
            if ious[best] >= self.iou_threshold:
                detection = unmatched.pop(best)
                track.history.append(track.box.copy())
                track.box = boxes[detection].copy()
                track.score = float(scores[detection])
                track.hits += 1
                track.misses = 0
            else:
                track.misses += 1

        for detection in unmatched:
            self.tracks.append(
                Track(
                    track_id=self._next_id,
                    box=boxes[detection].copy(),
                    score=float(scores[detection]),
                )
            )
            self._next_id += 1

        self.tracks = [
            track for track in self.tracks if track.misses <= self.max_misses
        ]
        return list(self.tracks)

    @property
    def confirmed_tracks(self):
        return [track for track in self.tracks if track.confirmed]


def tracking_cost_us(tracks, detections):
    """Simulated CPU cost of one association pass (ref-us).

    Greedy association is O(tracks * detections) IoU evaluations plus
    bookkeeping per object.
    """
    return 15.0 + tracks * detections * 0.12 + (tracks + detections) * 0.8
