"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``models``
    List the Table-I model zoo with measured graph statistics.
``socs``
    List the Table-II platforms.
``run``
    Simulate one pipeline configuration and print its AI-tax breakdown.
``experiment``
    Regenerate one paper table/figure by id (``fig5``, ``table1``, ...).
``fleet``
    Simulate a device population in parallel and print fleet-level
    AI-tax percentiles.
``chaos``
    Sweep deterministic FastRPC fault injection over the chaos
    population and print AI-tax inflation plus the recovery ledger
    (see docs/faults.md).
``trace``
    Record a named scenario with full instrumentation, print the
    self-time rollup, and export Chrome trace-event JSON for
    chrome://tracing / Perfetto (see docs/tracing.md).
``report``
    Regenerate everything (the EXPERIMENTS.md content).
"""

import argparse

from repro.apps import PipelineConfig, run_pipeline
from repro.apps.harness import CONTEXTS
from repro.apps.sessions import TARGETS
from repro.core import breakdown
from repro.core.report import render_breakdown
from repro.core.variability import VariabilityStats
from repro.experiments import REGISTRY, run_experiment
from repro.models import MODEL_CARDS
from repro.soc import SOC_SPECS


def _cmd_models(_args):
    print(run_experiment("table1").render())
    return 0


def _cmd_socs(_args):
    print(run_experiment("table2").render())
    return 0


def _cmd_run(args):
    if args.config is not None:
        import json

        from repro.apps.harness import config_from_dict

        with open(args.config) as handle:
            config = config_from_dict(json.load(handle))
    else:
        config = PipelineConfig(
            model_key=args.model,
            dtype=args.dtype,
            context=args.context,
            target=args.target,
            runs=args.runs,
            soc=args.soc,
            seed=args.seed,
        )
    records = run_pipeline(config)
    result = breakdown(records)
    print(render_breakdown(result))
    stats = VariabilityStats.from_collection(records)
    print(
        f"\nlatency: median {stats.median_ms:.2f} ms, "
        f"p95 {stats.p95_ms:.2f} ms, CV {stats.cv:.1%}, "
        f"max |dev| from median {stats.max_deviation_from_median:.1%}"
    )
    print(f"AI tax fraction: {result.tax_fraction:.1%}")
    return 0


def _cmd_experiment(args):
    kwargs = {}
    if args.runs is not None:
        kwargs["runs"] = args.runs
    result = run_experiment(args.id, **kwargs)
    print(result.render())
    if args.chart:
        from repro.experiments.charts import render_chart

        chart = render_chart(result)
        if chart is None:
            print("(no chart defined for this experiment)")
        else:
            print()
            print(chart)
    if args.json is not None:
        from repro.core.export import experiment_to_json

        experiment_to_json(result, path=args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_summary(_args):
    """Re-validate the paper's takeaways and show the repo inventory."""
    result = run_experiment("takeaways", runs=8)
    print(result.render())
    print()
    print(f"models in the zoo:        {len(MODEL_CARDS)}")
    print(f"simulated platforms:      {len(SOC_SPECS)}")
    print(f"registered experiments:   {len(REGISTRY)}")
    holds = all(row[3] for row in result.rows)
    print(f"all takeaways hold:       {'yes' if holds else 'NO'}")
    return 0 if holds else 1


def _cmd_fleet(args):
    from repro.fleet import aggregate_fleet, run_fleet

    fleet = run_fleet(
        sessions=args.sessions,
        workers=args.workers,
        seed=args.seed,
        cache_dir=args.cache_dir,
        runs=args.runs,
    )
    print(aggregate_fleet(fleet).to_experiment_result().render())
    print(
        f"\nsessions: {len(fleet)}  simulated: {fleet.simulated}  "
        f"cache hits: {fleet.cache_hits}  workers: {fleet.workers}"
    )
    return 0


def _cmd_chaos(args):
    rates = args.fault_rate if args.fault_rate else None
    kwargs = {
        "sessions": args.sessions,
        "workers": args.workers,
        "seed": args.seed,
        "runs": args.runs,
    }
    if rates is not None:
        kwargs["fault_rates"] = tuple(rates)
    result = run_experiment("chaos", **kwargs)
    print(result.render())
    ok_counts = result.column("ok")
    failed_counts = result.column("failed")
    print(
        f"\nrates swept: {len(result.rows)}  "
        f"completed sessions: {sum(ok_counts)}  "
        f"failed sessions: {sum(failed_counts)}"
    )
    # Partial results are expected under faults; an *empty* rate — every
    # session dead — is a recovery regression and fails the command.
    if any(count == 0 for count in ok_counts):
        print("error: a swept rate produced zero completed sessions")
        return 1
    return 0


def _cmd_trace(args):
    from repro.observability import (
        record_trace,
        summarize_trace,
        write_chrome_trace,
    )

    session = record_trace(
        args.scenario, runs=args.runs, seed=args.seed, soc=args.soc
    )
    trace = session.sim.trace
    print(summarize_trace(trace).render(top=args.top))
    events = write_chrome_trace(
        trace,
        args.out,
        process_name=f"repro:{args.scenario}",
        min_dur_us=args.min_dur_us,
    )
    print(
        f"\nwrote {args.out} ({events} events, "
        f"{session.sim.now / 1000.0:.1f} ms simulated)"
    )
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_report(args):
    order = sorted(REGISTRY)
    for experiment_id in order:
        kwargs = {}
        if args.fast and "runs" in _runs_parameter(experiment_id):
            kwargs["runs"] = 5
        result = run_experiment(experiment_id, **kwargs)
        print(result.render())
        print()
    return 0


def _runs_parameter(experiment_id):
    import inspect

    return inspect.signature(REGISTRY[experiment_id]).parameters


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AI Tax in Mobile SoCs (ISPASS 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table-I model zoo")
    sub.add_parser("socs", help="list the Table-II platforms")
    sub.add_parser(
        "summary", help="re-validate the paper takeaways + inventory"
    )

    run_parser = sub.add_parser("run", help="simulate one configuration")
    run_parser.add_argument("--model", default="mobilenet_v1",
                            choices=sorted(MODEL_CARDS))
    run_parser.add_argument("--dtype", default="fp32",
                            choices=("fp32", "int8", "fp16"))
    run_parser.add_argument("--context", default="app", choices=CONTEXTS)
    run_parser.add_argument("--target", default="nnapi", choices=TARGETS)
    run_parser.add_argument("--runs", type=int, default=20)
    run_parser.add_argument("--soc", default="sd845",
                            choices=sorted(SOC_SPECS))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="load the full PipelineConfig from a JSON file "
             "(overrides the other run flags)",
    )

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment_parser.add_argument("id", choices=sorted(REGISTRY))
    experiment_parser.add_argument("--runs", type=int, default=None)
    experiment_parser.add_argument(
        "--chart", action="store_true",
        help="render a terminal chart shaped like the paper's figure",
    )
    experiment_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the result as JSON",
    )

    fleet_parser = sub.add_parser(
        "fleet", help="simulate a device population in parallel"
    )
    fleet_parser.add_argument(
        "--sessions", type=int, default=64,
        help="number of device sessions to expand from the population",
    )
    fleet_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (results are identical for any value)",
    )
    fleet_parser.add_argument("--seed", type=int, default=0)
    fleet_parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache; re-runs skip simulated sessions",
    )
    fleet_parser.add_argument(
        "--runs", type=int, default=None,
        help="inference iterations per session (default: population's)",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="sweep FastRPC fault injection over a device fleet "
             "(docs/faults.md)",
    )
    chaos_parser.add_argument(
        "--sessions", type=int, default=16,
        help="device sessions expanded per swept rate",
    )
    chaos_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (results are identical for any value)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--runs", type=int, default=4,
        help="inference iterations per session",
    )
    chaos_parser.add_argument(
        "--fault-rate", type=float, action="append", default=None,
        metavar="RATE",
        help="per-call fault probability to sweep (repeatable; the 0.0 "
             "baseline is always included)",
    )

    from repro.observability.scenarios import SCENARIOS

    trace_parser = sub.add_parser(
        "trace",
        help="record a scenario and export a Chrome trace "
             "(docs/tracing.md)",
    )
    trace_parser.add_argument("scenario", choices=sorted(SCENARIOS))
    trace_parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    trace_parser.add_argument(
        "--runs", type=int, default=None,
        help="override the scenario's iteration count",
    )
    trace_parser.add_argument("--seed", type=int, default=None)
    trace_parser.add_argument(
        "--soc", default=None, choices=sorted(SOC_SPECS),
        help="override the scenario's platform",
    )
    trace_parser.add_argument(
        "--top", type=int, default=5,
        help="labels shown per track in the self-time rollup",
    )
    trace_parser.add_argument(
        "--min-dur-us", type=float, default=0.0,
        help="drop spans shorter than this from the export",
    )

    report_parser = sub.add_parser("report", help="regenerate everything")
    report_parser.add_argument("--fast", action="store_true")
    return parser


_HANDLERS = {
    "models": _cmd_models,
    "summary": _cmd_summary,
    "socs": _cmd_socs,
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "fleet": _cmd_fleet,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "report": _cmd_report,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
