"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``models``
    List the Table-I model zoo with measured graph statistics.
``socs``
    List the Table-II platforms.
``run``
    Simulate one pipeline configuration and print its AI-tax breakdown.
``experiment``
    Regenerate one paper table/figure by id (``fig5``, ``table1``, ...).
``fleet``
    Simulate a device population in parallel and print fleet-level
    AI-tax percentiles.
``chaos``
    Sweep deterministic FastRPC fault injection over the chaos
    population and print AI-tax inflation plus the recovery ledger
    (see docs/faults.md).
``serve``
    Run the inference service tier: open-loop traffic over a backend
    pool calibrated from the device fleet, reporting goodput against
    raw throughput plus SLO-miss attribution (see docs/service.md).
``trace``
    Record a named scenario with full instrumentation, print the
    self-time rollup, and export Chrome trace-event JSON for
    chrome://tracing / Perfetto (see docs/tracing.md).
``lint``
    Run the determinism linter over the source tree (see
    docs/determinism.md). Exit 1 on findings, 2 on configuration
    errors (unknown rule ids, stale baseline entries).
``semcheck``
    Run the semantic checker: unit-suffix consistency (``_us`` vs
    ``_ms`` arithmetic, bare ``* 1000`` conversions) and the resource
    request/release protocol across yields and exception edges. Same
    pragma/baseline/exit-code contract as ``lint``.
``archcheck``
    Whole-program architecture analysis: layering contract
    (``.repro-arch.toml``), surface-package discipline, cross-process
    safety, nondeterminism escape, and blocking calls in DES process
    bodies (see docs/analysis.md). Same contract as ``lint``.
``check``
    Umbrella over lint + semcheck + archcheck with a merged exit code
    — the single command CI runs; ``--sanitize TARGET`` folds
    dual-run replay digests in as well.
``sanitize``
    Replay a scenario, experiment, or small fleet twice with the
    runtime sanitizer attached and diff the event-stream sha256
    digests; a divergence pinpoints the first event where the replays
    disagree.
``report``
    Regenerate everything (the EXPERIMENTS.md content).
"""

import argparse
import pathlib
import sys

from repro.apps import PipelineConfig, run_pipeline
from repro.apps.harness import CONTEXTS
from repro.apps.sessions import TARGETS
from repro.core import breakdown
from repro.core.report import render_breakdown
from repro.core.variability import VariabilityStats
from repro.experiments import REGISTRY, run_experiment
from repro.models import MODEL_CARDS
from repro.sim import units
from repro.soc import SOC_SPECS


def _cmd_models(_args):
    print(run_experiment("table1").render())
    return 0


def _cmd_socs(_args):
    print(run_experiment("table2").render())
    return 0


def _enable_sanitizer_if_requested(args):
    """Honor a ``--sanitize`` flag for every simulator the command makes."""
    if getattr(args, "sanitize", False):
        from repro.sim import set_sanitize_default

        set_sanitize_default(True)
        print("sanitizer: on (invariant violations raise immediately)")


def _cmd_run(args):
    _enable_sanitizer_if_requested(args)
    if args.config is not None:
        import json

        from repro.apps.harness import config_from_dict

        with open(args.config) as handle:
            config = config_from_dict(json.load(handle))
    else:
        config = PipelineConfig(
            model_key=args.model,
            dtype=args.dtype,
            context=args.context,
            target=args.target,
            runs=args.runs,
            soc=args.soc,
            seed=args.seed,
        )
    records = run_pipeline(config)
    result = breakdown(records)
    print(render_breakdown(result))
    stats = VariabilityStats.from_collection(records)
    print(
        f"\nlatency: median {stats.median_ms:.2f} ms, "
        f"p95 {stats.p95_ms:.2f} ms, CV {stats.cv:.1%}, "
        f"max |dev| from median {stats.max_deviation_from_median:.1%}"
    )
    print(f"AI tax fraction: {result.tax_fraction:.1%}")
    return 0


def _cmd_experiment(args):
    _enable_sanitizer_if_requested(args)
    kwargs = {}
    if args.runs is not None:
        kwargs["runs"] = args.runs
    result = run_experiment(args.id, **kwargs)
    print(result.render())
    if args.chart:
        from repro.experiments.charts import render_chart

        chart = render_chart(result)
        if chart is None:
            print("(no chart defined for this experiment)")
        else:
            print()
            print(chart)
    if args.json is not None:
        from repro.core.export import experiment_to_json

        experiment_to_json(result, path=args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_summary(_args):
    """Re-validate the paper's takeaways and show the repo inventory."""
    result = run_experiment("takeaways", runs=8)
    print(result.render())
    print()
    print(f"models in the zoo:        {len(MODEL_CARDS)}")
    print(f"simulated platforms:      {len(SOC_SPECS)}")
    print(f"registered experiments:   {len(REGISTRY)}")
    holds = all(row[3] for row in result.rows)
    print(f"all takeaways hold:       {'yes' if holds else 'NO'}")
    return 0 if holds else 1


def _check_failure_rate(failure_rate, max_failure_rate):
    """Shared ``--max-failure-rate`` gate for fleet-shaped commands."""
    if max_failure_rate is None or failure_rate <= max_failure_rate:
        return 0
    print(
        f"error: failure rate {failure_rate:.1%} exceeds "
        f"--max-failure-rate {max_failure_rate:.1%}"
    )
    return 1


def _cmd_fleet(args):
    from repro.fleet import aggregate_fleet, run_fleet

    fleet = run_fleet(
        sessions=args.sessions,
        workers=args.workers,
        seed=args.seed,
        cache_dir=args.cache_dir,
        runs=args.runs,
        verify_cache=args.verify_cache,
        journal=args.journal,
        session_timeout_s=args.session_timeout,
    )
    print(aggregate_fleet(fleet).to_experiment_result().render())
    print(
        f"\nsessions: {len(fleet)}  simulated: {fleet.simulated}  "
        f"cache hits: {fleet.cache_hits}  "
        f"journal hits: {fleet.journal_hits}  workers: {fleet.workers}"
    )
    supervision = fleet.supervision
    if supervision and any(supervision.values()):
        print(
            "supervision: "
            + "  ".join(
                f"{key}: {value}"
                for key, value in sorted(supervision.items())
                if value
            )
        )
    return _check_failure_rate(fleet.failure_rate, args.max_failure_rate)


def _cmd_chaos(args):
    rates = args.fault_rate if args.fault_rate else None
    kwargs = {
        "sessions": args.sessions,
        "workers": args.workers,
        "seed": args.seed,
        "runs": args.runs,
    }
    if rates is not None:
        kwargs["fault_rates"] = tuple(rates)
    result = run_experiment("chaos", **kwargs)
    print(result.render())
    ok_counts = result.column("ok")
    failed_counts = result.column("failed")
    print(
        f"\nrates swept: {len(result.rows)}  "
        f"completed sessions: {sum(ok_counts)}  "
        f"failed sessions: {sum(failed_counts)}"
    )
    # Partial results are expected under faults; an *empty* rate — every
    # session dead — is a recovery regression and fails the command.
    if any(count == 0 for count in ok_counts):
        print("error: a swept rate produced zero completed sessions")
        return 1
    total = sum(ok_counts) + sum(failed_counts)
    failure_rate = sum(failed_counts) / total if total else 0.0
    return _check_failure_rate(failure_rate, args.max_failure_rate)


def _cmd_serve(args):
    from repro.service import ServiceConfig, run_service

    population = None
    if args.fault_rate:
        # Fault injection only bites a pool that contains the
        # no-recovery vendor slice; the paper population has none.
        from repro.fleet import chaos_population

        population = chaos_population()
    config = ServiceConfig(
        rate_rps=args.rate,
        duration_s=args.duration,
        arrivals=args.arrivals,
        slo_ms=args.slo,
        queue_capacity=args.capacity,
        policy=args.policy,
        max_batch=args.batch,
        max_delay_ms=args.delay,
        devices=args.devices,
        fault_rate=args.fault_rate,
        backend_fault_rate=args.backend_fault_rate,
        ssr_storm_ms=args.ssr_storm,
        ssr_storm_backends=args.ssr_storm_backends,
        breakers=not args.no_breakers,
        brownout_high=args.brownout_high,
        brownout_low=args.brownout_low,
        seed=args.seed,
    )
    result = run_service(config, population=population)
    print(result.render())
    if args.export is not None:
        result.write_json(args.export)
        print(f"\nwrote {args.export} (sha256 {result.digest()[:16]}...)")
    # A pool with zero completions means the service never answered
    # anyone — under fault injection that is the collapse signal.
    return 0 if result.completed else 1


def _cmd_trace(args):
    from repro.observability import (
        record_trace,
        summarize_trace,
        write_chrome_trace,
    )

    _enable_sanitizer_if_requested(args)
    session = record_trace(
        args.scenario, runs=args.runs, seed=args.seed, soc=args.soc
    )
    trace = session.sim.trace
    if session.sim.sanitizer is not None:
        audit = session.sim.sanitizer.audit()
        print(
            f"sanitizer: {audit['events']} events, {audit['ties']} tie "
            f"groups, digest {audit['digest'][:16]}..., "
            f"{len(audit['tracks'])} hardware tracks conserve busy+idle"
        )
    print(summarize_trace(trace).render(top=args.top))
    events = write_chrome_trace(
        trace,
        args.out,
        process_name=f"repro:{args.scenario}",
        min_dur_us=args.min_dur_us,
    )
    print(
        f"\nwrote {args.out} ({events} events, "
        f"{units.to_ms(session.sim.now):.1f} ms simulated)"
    )
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _default_paths(args):
    import repro

    return args.paths or [pathlib.Path(repro.__file__).parent]


def _checker_outcome(paths, check_paths, known_rules, default_baseline,
                     baseline=None, strict=False):
    """Run one checker plus its baseline handling; no printing.

    The compute half shared by the single-tool commands and the
    ``check`` umbrella. Returns a dict with the post-baseline
    ``findings``, the ``errors`` (configuration problems: exit 2), the
    ``stale_warnings`` (human-readable; promoted into ``errors`` when
    ``strict``), and the ``suppressed`` count.
    """
    from repro.analysis import baseline as baseline_mod
    from repro.analysis.common import LintError

    findings, errors = check_paths(paths)
    errors = list(errors)

    baseline_path = baseline
    if baseline_path is None:
        default = pathlib.Path(default_baseline)
        baseline_path = default if default.exists() else None
    entries = []
    if baseline_path is not None:
        entries, baseline_errors = baseline_mod.load_baseline(
            baseline_path, known_rules=known_rules
        )
        errors.extend(baseline_errors)
    new_findings, stale = baseline_mod.apply_baseline(findings, entries)

    stale_warnings = []
    for entry in stale:
        message = (
            f"{entry.path}:{entry.line}: stale baseline entry "
            f"[{entry.rule}] — the finding no longer exists; remove it"
        )
        if strict:
            errors.append(LintError(entry.path, entry.line, message))
        else:
            stale_warnings.append(message)
    return {
        "findings": new_findings,
        "errors": errors,
        "stale_warnings": stale_warnings,
        "suppressed": len(findings) - len(new_findings),
        "raw_findings": findings,
    }


def _print_outcome(outcome, render, clean_label, as_json, diag):
    """The printing half of one checker run; returns the exit code."""
    from repro.analysis.common import findings_to_json

    if as_json:
        import json

        print(json.dumps(findings_to_json(outcome["findings"]), indent=2))
    else:
        for line in render(outcome["findings"]):
            print(line)
    for message in outcome["stale_warnings"]:
        print(f"warning: {message}", file=diag)
    for error in outcome["errors"]:
        print(error.render(), file=diag)
    if outcome["errors"]:
        return 2
    if outcome["findings"]:
        print(
            f"\n{len(outcome['findings'])} finding(s); suppress a true "
            "positive with `# repro: allow[rule-id]`, see "
            "docs/analysis.md",
            file=diag,
        )
        return 1
    suppressed = outcome["suppressed"]
    print(
        f"{clean_label}: clean"
        + (f" ({suppressed} baselined)" if suppressed else ""),
        file=diag,
    )
    return 0


def _list_pragmas(args):
    """The ``--list-pragmas`` audit: one merged, deduplicated table.

    Rows are keyed by ``file:line`` — the same table whichever checker
    (or the ``check`` umbrella) asks for it, since pragmas are a
    shared namespace. Each rule is annotated with the checker that
    owns it; a rule no tool recognizes is flagged inline and is an
    error, exactly as it would be during a check run.
    """
    from repro.analysis.common import inventory_pragmas, rule_owners

    records, errors = inventory_pragmas(_default_paths(args))
    owners = rule_owners()
    merged = {}
    for record in records:
        key = (record["path"], record["line"], record["kind"])
        row = merged.setdefault(key, [])
        for rule in record["rules"]:
            if rule not in row:
                row.append(rule)
    rows = []
    for (path, line, kind), rules in sorted(merged.items()):
        tools = sorted({owners[rule] for rule in rules if rule in owners})
        unrecognized = [rule for rule in rules if rule not in owners]
        rows.append({
            "path": path,
            "line": line,
            "kind": kind,
            "rules": rules,
            "tools": tools,
            "unrecognized": unrecognized,
        })

    as_json = args.format == "json" or getattr(args, "json", False)
    diag = sys.stderr if as_json else sys.stdout
    if as_json:
        import json

        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            rules = ", ".join(row["rules"])
            line = (
                f"{row['path']}:{row['line']}: {row['kind']}[{rules}]"
            )
            if row["tools"]:
                line += f" ({', '.join(row['tools'])})"
            if row["unrecognized"]:
                line += (
                    " — unrecognized by every tool: "
                    + ", ".join(row["unrecognized"])
                )
            print(line)
        print(f"{len(rows)} pragma(s)", file=diag)
    for error in errors:
        print(error.render(), file=diag)
    return 2 if errors else 0


def _run_checker(args, check_paths, render, known_rules, default_baseline,
                 clean_label):
    """Shared driver for the single-checker commands.

    Every checker speaks the same contract: pragma suppression, an
    acknowledged-findings baseline (``--check`` makes stale entries
    errors), a shared ``--format=json`` findings payload, and exit
    codes 0 (clean) / 1 (findings) / 2 (the run cannot be trusted).
    """
    from repro.analysis import baseline as baseline_mod

    if getattr(args, "list_pragmas", False):
        return _list_pragmas(args)
    paths = _default_paths(args)

    if args.write_baseline:
        findings, errors = check_paths(paths)
        target = args.baseline or default_baseline
        count = baseline_mod.write_baseline(target, findings)
        print(f"wrote {target} ({count} acknowledged findings)")
        for error in errors:
            print(error.render())
        return 2 if errors else 0

    if getattr(args, "update_baseline", False):
        findings, errors = check_paths(paths)
        target = args.baseline or default_baseline
        kept, pruned, prune_errors = baseline_mod.prune_baseline(
            target, findings, known_rules=known_rules
        )
        errors = list(errors) + list(prune_errors)
        for entry in pruned:
            print(f"pruned {entry.path}:{entry.line} [{entry.rule}]")
        print(
            f"{target}: pruned {len(pruned)} stale entr"
            f"{'y' if len(pruned) == 1 else 'ies'}, "
            f"{len(kept)} kept"
        )
        for error in errors:
            print(error.render())
        return 2 if errors else 0

    outcome = _checker_outcome(
        paths, check_paths, known_rules, default_baseline,
        baseline=args.baseline, strict=args.check,
    )
    as_json = args.format == "json" or getattr(args, "json", False)
    # In json mode stdout carries the findings array and nothing else;
    # diagnostics move to stderr so the output stays machine-readable.
    diag = sys.stderr if as_json else sys.stdout
    return _print_outcome(outcome, render, clean_label, as_json, diag)


def _checker_table(args):
    """(name, check_paths, render, known_rules, baseline, label) rows."""
    from repro.analysis import archcheck as archcheck_mod
    from repro.analysis import baseline as baseline_mod
    from repro.analysis import lint as lint_mod
    from repro.analysis import racecheck as racecheck_mod
    from repro.analysis import semcheck as semcheck_mod

    contract_path = getattr(args, "contract", None)
    return (
        (
            "lint", lint_mod.lint_paths, lint_mod.render_findings,
            lint_mod.RULES_BY_ID, baseline_mod.BASELINE_NAME,
            "determinism lint",
        ),
        (
            "semcheck", semcheck_mod.semcheck_paths,
            semcheck_mod.render_findings, semcheck_mod.RULES_BY_ID,
            baseline_mod.SEMCHECK_BASELINE_NAME, "semcheck",
        ),
        (
            "archcheck",
            lambda paths: archcheck_mod.archcheck_paths(
                paths, contract_path=contract_path
            ),
            archcheck_mod.render_findings, archcheck_mod.RULES_BY_ID,
            baseline_mod.ARCHCHECK_BASELINE_NAME, "archcheck",
        ),
        (
            "racecheck", racecheck_mod.racecheck_paths,
            racecheck_mod.render_findings, racecheck_mod.RULES_BY_ID,
            baseline_mod.RACECHECK_BASELINE_NAME, "racecheck",
        ),
    )


def _cmd_lint(args):
    from repro.analysis import baseline as baseline_mod
    from repro.analysis import lint as lint_mod

    return _run_checker(
        args,
        check_paths=lint_mod.lint_paths,
        render=lint_mod.render_findings,
        known_rules=lint_mod.RULES_BY_ID,
        default_baseline=baseline_mod.BASELINE_NAME,
        clean_label="determinism lint",
    )


def _cmd_semcheck(args):
    from repro.analysis import baseline as baseline_mod
    from repro.analysis import semcheck as semcheck_mod

    return _run_checker(
        args,
        check_paths=semcheck_mod.semcheck_paths,
        render=semcheck_mod.render_findings,
        known_rules=semcheck_mod.RULES_BY_ID,
        default_baseline=baseline_mod.SEMCHECK_BASELINE_NAME,
        clean_label="semcheck",
    )


def _cmd_archcheck(args):
    from repro.analysis import archcheck as archcheck_mod
    from repro.analysis import baseline as baseline_mod

    return _run_checker(
        args,
        check_paths=lambda paths: archcheck_mod.archcheck_paths(
            paths, contract_path=args.contract
        ),
        render=archcheck_mod.render_findings,
        known_rules=archcheck_mod.RULES_BY_ID,
        default_baseline=baseline_mod.ARCHCHECK_BASELINE_NAME,
        clean_label="archcheck",
    )


def _cmd_racecheck(args):
    from repro.analysis import baseline as baseline_mod
    from repro.analysis import racecheck as racecheck_mod

    if getattr(args, "list_locks", False):
        records, errors = racecheck_mod.lock_inventory(_default_paths(args))
        as_json = args.format == "json"
        diag = sys.stderr if as_json else sys.stdout
        if as_json:
            import json

            print(json.dumps(records, indent=2))
        else:
            for record in records:
                locks = ", ".join(record["locks"])
                print(
                    f"{record['path']}:{record['line']}: "
                    f"{record['function']} yields holding [{locks}]"
                )
            print(f"{len(records)} yield(s) while holding", file=diag)
        for error in errors:
            print(error.render(), file=diag)
        return 2 if errors else 0

    return _run_checker(
        args,
        check_paths=racecheck_mod.racecheck_paths,
        render=racecheck_mod.render_findings,
        known_rules=racecheck_mod.RULES_BY_ID,
        default_baseline=baseline_mod.RACECHECK_BASELINE_NAME,
        clean_label="racecheck",
    )


def _cmd_check(args):
    """Umbrella: lint + semcheck + archcheck + racecheck (+ dual-runs).

    One command for CI: every static checker over the same paths, a
    merged exit code (worst of the parts), and in ``--format=json`` a
    single object keyed by tool.
    """
    if getattr(args, "list_pragmas", False):
        return _list_pragmas(args)
    if args.write_baseline or args.update_baseline or args.baseline:
        print(
            "error: check runs every tool against its own default "
            "baseline; use the per-tool commands to write, prune, or "
            "point at one"
        )
        return 2
    from repro.analysis.common import findings_to_json

    paths = _default_paths(args)
    as_json = args.format == "json"
    diag = sys.stderr if as_json else sys.stdout
    payload = {}
    exit_code = 0
    for name, check_paths, render, known_rules, default_baseline, label in (
        _checker_table(args)
    ):
        outcome = _checker_outcome(
            paths, check_paths, known_rules, default_baseline,
            strict=args.check,
        )
        if as_json:
            payload[name] = findings_to_json(outcome["findings"])
            for message in outcome["stale_warnings"]:
                print(f"warning: {message}", file=diag)
            for error in outcome["errors"]:
                print(error.render(), file=diag)
            code = (
                2 if outcome["errors"] else 1 if outcome["findings"] else 0
            )
        else:
            print(f"== {name} ==")
            code = _print_outcome(outcome, render, label, False, diag)
        exit_code = max(exit_code, code)

    if args.sanitize:
        from repro.analysis.sanitize import dual_run

        reports = []
        for target in args.sanitize:
            scenario, unknown = _sanitize_scenario(target)
            if scenario is None:
                print(unknown, file=diag)
                exit_code = max(exit_code, 2)
                continue
            report = dual_run(scenario)
            reports.append({"target": target, **report.to_json()})
            if not as_json:
                print(f"== sanitize {target} ==")
                print(report.render())
            if not report.identical:
                exit_code = max(exit_code, 1)
        if as_json:
            payload["sanitize"] = reports

    if as_json:
        import json

        print(json.dumps(payload, indent=2))
    elif exit_code == 0:
        print("check: all clean")
    return exit_code


def _sanitize_scenario(name, runs=None, seed=None, sessions=4):
    """Resolve a sanitize target to a zero-argument scenario callable.

    Returns ``(callable, None)``, or ``(None, message)`` naming the
    known targets when ``name`` matches nothing.
    """
    from repro.experiments import REGISTRY, run_experiment
    from repro.observability.scenarios import SCENARIOS, record_trace

    if name == "serve":
        from repro.service import run_service

        def scenario():
            run_service(
                rate_rps=120.0, duration_s=0.5,
                devices=sessions, seed=seed or 0,
                calibration_runs=runs or 2,
            )
    elif name == "fleet":
        from repro.fleet import run_fleet

        def scenario():
            run_fleet(
                sessions=sessions, workers=1, seed=seed or 0,
                runs=runs or 3,
            )
    elif name in SCENARIOS:
        def scenario():
            record_trace(name, runs=runs, seed=seed)
    elif name in REGISTRY:
        def scenario():
            run_experiment(name)
    else:
        known = sorted(set(SCENARIOS) | set(REGISTRY) | {"fleet", "serve"})
        return None, f"unknown sanitize target {name!r}; known: {known}"
    return scenario, None


def _cmd_sanitize(args):
    from repro.analysis.sanitize import dual_run

    scenario, unknown = _sanitize_scenario(
        args.target, runs=args.runs, seed=args.seed, sessions=args.sessions
    )
    if scenario is None:
        print(unknown)
        return 2

    report = dual_run(scenario)
    if args.format == "json":
        import json

        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.identical else 1


def _cmd_report(args):
    order = sorted(REGISTRY)
    for experiment_id in order:
        kwargs = {}
        if args.fast and "runs" in _runs_parameter(experiment_id):
            kwargs["runs"] = 5
        result = run_experiment(experiment_id, **kwargs)
        print(result.render())
        print()
    return 0


def _runs_parameter(experiment_id):
    import inspect

    return inspect.signature(REGISTRY[experiment_id]).parameters


def _add_checker_arguments(parser, baseline_name):
    """Arguments shared by every static-checker command."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to check (default: the installed "
             "repro package)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline of acknowledged findings (default: "
             f"{baseline_name} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="acknowledge all current findings into the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="prune stale baseline entries (acknowledged findings that "
             "no longer exist); never adds entries",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: stale baseline entries are errors",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings output format (json is shared across the "
             "checkers for tooling)",
    )
    parser.add_argument(
        "--list-pragmas", action="store_true",
        help="inventory every `# repro: allow[...]` suppression under "
             "the checked paths instead of running rules",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AI Tax in Mobile SoCs (ISPASS 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table-I model zoo")
    sub.add_parser("socs", help="list the Table-II platforms")
    sub.add_parser(
        "summary", help="re-validate the paper takeaways + inventory"
    )

    run_parser = sub.add_parser("run", help="simulate one configuration")
    run_parser.add_argument("--model", default="mobilenet_v1",
                            choices=sorted(MODEL_CARDS))
    run_parser.add_argument("--dtype", default="fp32",
                            choices=("fp32", "int8", "fp16"))
    run_parser.add_argument("--context", default="app", choices=CONTEXTS)
    run_parser.add_argument("--target", default="nnapi", choices=TARGETS)
    run_parser.add_argument("--runs", type=int, default=20)
    run_parser.add_argument("--soc", default="sd845",
                            choices=sorted(SOC_SPECS))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="load the full PipelineConfig from a JSON file "
             "(overrides the other run flags)",
    )
    run_parser.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime sanitizer (docs/determinism.md)",
    )

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment_parser.add_argument("id", choices=sorted(REGISTRY))
    experiment_parser.add_argument("--runs", type=int, default=None)
    experiment_parser.add_argument(
        "--chart", action="store_true",
        help="render a terminal chart shaped like the paper's figure",
    )
    experiment_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the result as JSON",
    )
    experiment_parser.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime sanitizer (docs/determinism.md)",
    )

    fleet_parser = sub.add_parser(
        "fleet", help="simulate a device population in parallel"
    )
    fleet_parser.add_argument(
        "--sessions", type=int, default=64,
        help="number of device sessions to expand from the population",
    )
    fleet_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (results are identical for any value)",
    )
    fleet_parser.add_argument("--seed", type=int, default=0)
    fleet_parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache; re-runs skip simulated sessions",
    )
    fleet_parser.add_argument(
        "--runs", type=int, default=None,
        help="inference iterations per session (default: population's)",
    )
    fleet_parser.add_argument(
        "--verify-cache", action="store_true", default=None,
        help="re-simulate cache hits and require identical result "
             "digests (also on under REPRO_SANITIZE=1)",
    )
    fleet_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append-only run journal; an interrupted run resumed with "
             "the same journal re-simulates nothing it finished",
    )
    fleet_parser.add_argument(
        "--session-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per session; a hung worker is killed "
             "and the session retried (docs/faults.md)",
    )
    fleet_parser.add_argument(
        "--max-failure-rate", type=float, default=None, metavar="FRACTION",
        help="exit non-zero when more than this fraction of sessions "
             "finish with a structured error",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="sweep FastRPC fault injection over a device fleet "
             "(docs/faults.md)",
    )
    chaos_parser.add_argument(
        "--sessions", type=int, default=16,
        help="device sessions expanded per swept rate",
    )
    chaos_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (results are identical for any value)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--runs", type=int, default=4,
        help="inference iterations per session",
    )
    chaos_parser.add_argument(
        "--fault-rate", type=float, action="append", default=None,
        metavar="RATE",
        help="per-call fault probability to sweep (repeatable; the 0.0 "
             "baseline is always included)",
    )
    chaos_parser.add_argument(
        "--max-failure-rate", type=float, default=None, metavar="FRACTION",
        help="exit non-zero when more than this fraction of sessions "
             "across the sweep failed",
    )

    from repro.service import ARRIVAL_KINDS, POLICIES

    serve_parser = sub.add_parser(
        "serve",
        help="run the inference service tier over a fleet-calibrated "
             "backend pool (docs/service.md)",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=200.0,
        help="mean offered load, requests per second",
    )
    serve_parser.add_argument(
        "--duration", type=float, default=1.0,
        help="simulated traffic window, seconds",
    )
    serve_parser.add_argument(
        "--arrivals", default="poisson", choices=ARRIVAL_KINDS,
        help="arrival process shape",
    )
    serve_parser.add_argument(
        "--slo", type=float, default=50.0, metavar="MS",
        help="per-request latency budget in ms (goodput bound)",
    )
    serve_parser.add_argument(
        "--capacity", type=int, default=64,
        help="admission bound on outstanding requests",
    )
    serve_parser.add_argument(
        "--policy", default="reject", choices=POLICIES,
        help="what to do with over-capacity arrivals",
    )
    serve_parser.add_argument(
        "--batch", type=int, default=4,
        help="dynamic batcher: flush at this many requests",
    )
    serve_parser.add_argument(
        "--delay", type=float, default=5.0, metavar="MS",
        help="dynamic batcher: flush once the oldest waited this long",
    )
    serve_parser.add_argument(
        "--devices", type=int, default=4,
        help="population devices calibrated into the backend pool",
    )
    serve_parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="per-call fault probability during calibration; nonzero "
             "switches to the chaos population so the no-recovery "
             "vendor slice is in the pool (docs/faults.md)",
    )
    serve_parser.add_argument(
        "--backend-fault-rate", type=float, default=0.0, metavar="RATE",
        help="per-batch fault probability at each serving backend "
             "(failed batches redispatch; breakers eject repeat "
             "offenders, docs/service.md)",
    )
    serve_parser.add_argument(
        "--ssr-storm", type=float, default=None, metavar="MS",
        help="inject a subsystem-restart storm at this simulated time",
    )
    serve_parser.add_argument(
        "--ssr-storm-backends", type=int, default=None, metavar="N",
        help="how many backends the storm hits (default: all)",
    )
    serve_parser.add_argument(
        "--no-breakers", action="store_true",
        help="disable the per-backend circuit breakers",
    )
    serve_parser.add_argument(
        "--brownout-high", type=int, default=None, metavar="N",
        help="enter brownout (degraded-model execution) at this many "
             "outstanding requests",
    )
    serve_parser.add_argument(
        "--brownout-low", type=int, default=None, metavar="N",
        help="exit brownout at this many outstanding requests "
             "(default: half of --brownout-high)",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the canonical ServiceResult JSON (byte-identical "
             "for same config+seed)",
    )

    from repro.observability.scenarios import SCENARIOS

    trace_parser = sub.add_parser(
        "trace",
        help="record a scenario and export a Chrome trace "
             "(docs/tracing.md)",
    )
    trace_parser.add_argument("scenario", choices=sorted(SCENARIOS))
    trace_parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    trace_parser.add_argument(
        "--runs", type=int, default=None,
        help="override the scenario's iteration count",
    )
    trace_parser.add_argument("--seed", type=int, default=None)
    trace_parser.add_argument(
        "--soc", default=None, choices=sorted(SOC_SPECS),
        help="override the scenario's platform",
    )
    trace_parser.add_argument(
        "--top", type=int, default=5,
        help="labels shown per track in the self-time rollup",
    )
    trace_parser.add_argument(
        "--min-dur-us", type=float, default=0.0,
        help="drop spans shorter than this from the export",
    )
    trace_parser.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime sanitizer and print its audit",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="determinism lint over the source tree "
             "(docs/determinism.md)",
    )
    _add_checker_arguments(lint_parser, ".repro-lint-baseline.json")
    lint_parser.add_argument(
        "--json", action="store_true",
        help="alias for --format=json (kept for tooling compatibility)",
    )

    semcheck_parser = sub.add_parser(
        "semcheck",
        help="semantic checks: unit consistency and resource "
             "request/release protocol (docs/determinism.md)",
    )
    _add_checker_arguments(semcheck_parser, ".repro-semcheck-baseline.json")

    archcheck_parser = sub.add_parser(
        "archcheck",
        help="whole-program layering and cross-process safety "
             "analysis against .repro-arch.toml (docs/analysis.md)",
    )
    _add_checker_arguments(archcheck_parser, ".repro-archcheck-baseline.json")
    archcheck_parser.add_argument(
        "--contract", default=None, metavar="PATH",
        help="layering contract (default: .repro-arch.toml in the "
             "working directory)",
    )

    racecheck_parser = sub.add_parser(
        "racecheck",
        help="yield-point atomicity and lockset analysis of the "
             "cooperative DES process bodies (docs/analysis.md)",
    )
    _add_checker_arguments(racecheck_parser, ".repro-racecheck-baseline.json")
    racecheck_parser.add_argument(
        "--list-locks", action="store_true",
        help="inventory every yield executed while a Resource grant is "
             "held instead of running rules",
    )

    check_parser = sub.add_parser(
        "check",
        help="umbrella: lint + semcheck + archcheck + racecheck over "
             "the same paths with a merged exit code (docs/analysis.md)",
    )
    _add_checker_arguments(check_parser, "<per-tool defaults>")
    check_parser.add_argument(
        "--contract", default=None, metavar="PATH",
        help="archcheck layering contract (default: .repro-arch.toml)",
    )
    check_parser.add_argument(
        "--sanitize", action="append", default=None, metavar="TARGET",
        help="also dual-run this sanitize target (repeatable); a "
             "divergence fails the check",
    )

    sanitize_parser = sub.add_parser(
        "sanitize",
        help="dual-run replay digest: run a target twice with "
             "invariant checks and diff event-stream sha256s",
    )
    sanitize_parser.add_argument(
        "target",
        help="a trace scenario (e.g. quickstart, chaos), an experiment "
             "id (e.g. fig7), 'fleet', or 'serve'",
    )
    sanitize_parser.add_argument(
        "--runs", type=int, default=None,
        help="iteration override for scenario/fleet targets",
    )
    sanitize_parser.add_argument("--seed", type=int, default=None)
    sanitize_parser.add_argument(
        "--sessions", type=int, default=4,
        help="fleet target: sessions per replay",
    )
    sanitize_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report output format (json mirrors the other checkers)",
    )

    report_parser = sub.add_parser("report", help="regenerate everything")
    report_parser.add_argument("--fast", action="store_true")
    return parser


_HANDLERS = {
    "models": _cmd_models,
    "summary": _cmd_summary,
    "socs": _cmd_socs,
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "fleet": _cmd_fleet,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
    "semcheck": _cmd_semcheck,
    "archcheck": _cmd_archcheck,
    "racecheck": _cmd_racecheck,
    "check": _cmd_check,
    "sanitize": _cmd_sanitize,
    "report": _cmd_report,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
