"""Observability: exportable traces, probes, and self-time rollups.

The paper's core method is attributing *where time goes* — its Fig. 6
Snapdragon Profiler timelines and Fig. 7 FastRPC call flow are
observability artifacts. This package is the simulator's equivalent
instrumentation backbone:

* :mod:`repro.observability.chrome_trace` converts a
  :class:`~repro.sim.trace.TraceRecorder` into Chrome trace-event JSON
  loadable at ``chrome://tracing`` or https://ui.perfetto.dev;
* :mod:`repro.sim.probes` is the span-context API the hot paths
  (FastRPC, NNAPI, TFLite, scheduler, app stages) are wired with —
  re-exported here (and as :mod:`repro.observability.probes`) for
  convenience;
* :mod:`repro.observability.summary` rolls spans up into per-track,
  per-label exclusive/inclusive self-time tables;
* :mod:`repro.observability.scenarios` names ready-made configurations
  for ``python -m repro trace <scenario> --out trace.json``.

See ``docs/tracing.md`` for the end-to-end trace-analysis workflow.
"""

from repro.observability.chrome_trace import (
    to_chrome_trace,
    track_sort_key,
    write_chrome_trace,
)
from repro.sim.probes import counter, instant, probe
from repro.observability.summary import (
    LabelStat,
    TraceSummary,
    summarize_trace,
)

# Scenario helpers sit on top of repro.apps (which the instrumented
# layers below it import probes from); resolve them lazily so importing
# any single layer never forms a cycle through this package.
_SCENARIO_EXPORTS = (
    "SCENARIOS",
    "TraceSession",
    "record_trace",
    "scenario_config",
)


def __getattr__(name):
    if name in _SCENARIO_EXPORTS:
        from repro.observability import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "track_sort_key",
    "probe",
    "instant",
    "counter",
    "SCENARIOS",
    "TraceSession",
    "record_trace",
    "scenario_config",
    "LabelStat",
    "TraceSummary",
    "summarize_trace",
]
