"""Trace export in Chrome trace-event format.

A :class:`~repro.sim.trace.TraceRecorder` is dumped as the JSON the
Chrome tracing UI (``chrome://tracing`` / Perfetto) understands, giving
the reproduction the equivalent of the Snapdragon Profiler view the
paper screenshots in Fig. 6: per-core swimlanes, cDSP activity, FastRPC
call-flow nesting, pipeline stages, counter tracks (DVFS frequency, die
temperature, queue depths), and instant markers.

Event mapping
-------------

========================  =======================================
TraceRecorder             Chrome trace event
========================  =======================================
closed ``Span``           ``ph: "X"`` complete event (one tid per
                          track; nesting derived from ts/dur)
counter sample            ``ph: "C"`` counter event
``mark()``                ``ph: "i"`` global instant
track / process names     ``ph: "M"`` metadata events
========================  =======================================

Timestamps are simulation microseconds, which is exactly the unit the
trace-event format expects. Non-metadata events are emitted sorted by
``ts`` so consumers (and the schema tests) can rely on monotonic time.
"""

import json
import re

#: Display order of track families: hardware swimlanes first (cores in
#: numeric order, then accelerators and fabric), software layers after
#: (offload channel, frameworks, app pipeline stages).
_TRACK_FAMILIES = (
    "cpu",
    "gpu",
    "cdsp",
    "npu",
    "axi",
    "fastrpc",
    "tflite",
    "nnapi",
    "snpe",
    "pipeline",
)

_TRAILING_DIGITS = re.compile(r"(\d+)$")


def track_sort_key(track):
    """Sort key grouping tracks into the canonical swimlane order.

    ``cpu0``..``cpu7`` sort numerically, hardware tracks precede
    software tracks, and unknown tracks sort last alphabetically —
    stable for any input, so tid assignment is deterministic.
    """
    digits = _TRAILING_DIGITS.search(track)
    number = int(digits.group(1)) if digits else -1
    for family_index, family in enumerate(_TRACK_FAMILIES):
        if track == family or track.startswith(family):
            return (family_index, number, track)
    return (len(_TRACK_FAMILIES), number, track)


def _track_ids(trace, tracks=None):
    """Stable (track -> tid) assignment in swimlane display order."""
    present = {span.track for span in trace.spans}
    if tracks is not None:
        present &= set(tracks)
    ordered = sorted(present, key=track_sort_key)
    return {track: index + 1 for index, track in enumerate(ordered)}


def to_chrome_trace(trace, process_name="repro-soc", tracks=None,
                    min_dur_us=0.0, include_counters=True,
                    include_marks=True):
    """Convert a TraceRecorder to a Chrome trace-event dict.

    Parameters
    ----------
    tracks:
        Optional iterable of track names; only spans on these tracks
        are exported (counters and marks are track-less and unaffected).
    min_dur_us:
        Drop spans shorter than this — useful to thin out scheduler
        timeslices when exporting very long runs.
    include_counters / include_marks:
        Toggle ``ph: "C"`` / ``ph: "i"`` event emission.
    """
    tids = _track_ids(trace, tracks=tracks)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    # key=tid keeps the canonical swimlane order from _track_ids.
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    events = []
    for span in trace.spans:
        if not span.closed or span.track not in tids:
            continue
        if span.duration < min_dur_us:
            continue
        events.append(
            {
                "name": span.label,
                "cat": span.track,
                "ph": "X",  # complete event
                "pid": 1,
                "tid": tids[span.track],
                "ts": span.start,
                "dur": span.duration,
                "args": dict(span.meta),
            }
        )
    if include_counters:
        for name, samples in sorted(trace.counters.items()):
            for timestamp, value in samples:
                events.append(
                    {
                        "name": name,
                        "ph": "C",  # counter
                        "pid": 1,
                        "ts": timestamp,
                        "args": {"value": value},
                    }
                )
    if include_marks:
        for timestamp, label, meta in trace.marks:
            events.append(
                {
                    "name": label,
                    "ph": "i",  # instant
                    "s": "g",
                    "pid": 1,
                    "ts": timestamp,
                    "args": dict(meta),
                }
            )
    events.sort(key=lambda event: event["ts"])  # stable: ties keep order
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace, path, process_name="repro-soc", **kwargs):
    """Write the trace to ``path`` as JSON; returns the event count.

    Keyword arguments are forwarded to :func:`to_chrome_trace`
    (``tracks``, ``min_dur_us``, ...).
    """
    payload = to_chrome_trace(trace, process_name=process_name, **kwargs)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])
