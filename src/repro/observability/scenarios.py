"""Named trace scenarios for ``python -m repro trace <scenario>``.

A scenario is a ready-made :class:`~repro.apps.harness.PipelineConfig`
with tracing forced on — the configurations the paper profiles (the
Fig. 6 trio), the README quickstart, and a multi-tenant variant. They
give the trace CLI, docs, and tests one stable vocabulary.
"""

from collections import namedtuple

from repro.apps.harness import PipelineConfig, run_pipeline_with_rig

#: Scenario name -> PipelineConfig keyword arguments.
SCENARIOS = {
    # The README quickstart: a real camera app classifying frames
    # through NNAPI on a Pixel-3-class SoC.
    "quickstart": dict(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=10,
    ),
    # The paper's Fig. 6 trio: quantized EfficientNet-Lite0 under the
    # three execution modes profiled with the Snapdragon Profiler.
    "fig6-cpu": dict(
        model_key="efficientnet_lite0", dtype="int8", context="cli",
        target="cpu", runs=6,
    ),
    "fig6-hexagon": dict(
        model_key="efficientnet_lite0", dtype="int8", context="cli",
        target="hexagon", runs=6,
    ),
    "fig6-nnapi": dict(
        model_key="efficientnet_lite0", dtype="int8", context="cli",
        target="nnapi", runs=6,
    ),
    # The CLI benchmark packaging on tuned CPU kernels (Fig. 3 left).
    "benchmark-cpu": dict(
        model_key="mobilenet_v1", dtype="int8", context="cli",
        target="cpu", runs=8,
    ),
    # Fig. 9 shape: an app sharing the DSP with background inferences.
    "multitenant": dict(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=8, background=(2, "nnapi"),
    ),
    # The quickstart app under injected FastRPC faults: retry spans,
    # fault instants, and runtime CPU fallbacks on the trace
    # (docs/faults.md).
    "chaos": dict(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=10, fault_rate=0.3, seed=7,
    ),
}

#: Everything a recorded scenario hands back; ``sim.trace`` is the
#: populated :class:`~repro.sim.trace.TraceRecorder`.
TraceSession = namedtuple(
    "TraceSession", "scenario config records sim soc kernel packaging"
)


def scenario_config(name, runs=None, seed=None, soc=None):
    """The :class:`PipelineConfig` for a scenario, tracing enabled."""
    try:
        kwargs = dict(SCENARIOS[name])
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    if runs is not None:
        kwargs["runs"] = runs
    if seed is not None:
        kwargs["seed"] = seed
    if soc is not None:
        kwargs["soc"] = soc
    kwargs["trace"] = True
    return PipelineConfig(**kwargs)


def record_trace(name, runs=None, seed=None, soc=None):
    """Simulate a scenario with tracing on; returns a :class:`TraceSession`."""
    config = scenario_config(name, runs=runs, seed=seed, soc=soc)
    records, sim, soc_obj, kernel, packaging = run_pipeline_with_rig(config)
    return TraceSession(name, config, records, sim, soc_obj, kernel, packaging)
