"""Backwards-compatible alias for :mod:`repro.sim.probes`.

The span-context probes are instrumentation *primitives*: they depend
on nothing but the duck-typed trace recorder at hand, and the platform
layers (fastrpc, NNAPI, TFLite delegates, the app pipeline) call them
from inside the simulated stack. They therefore live with the engine in
:mod:`repro.sim.probes` — the observability package *consumes* the
spans they record. Import from ``repro.sim.probes`` in new code.
"""

from repro.sim.probes import (  # noqa: F401
    _NULL,
    counter,
    instant,
    probe,
)

__all__ = ["counter", "instant", "probe"]
