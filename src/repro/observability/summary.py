"""Self-time rollup: where trace time goes, per track and label.

The Chrome trace answers "what happened at t=1.2s"; this module answers
"what dominated". For every track it computes, per span label:

* **inclusive** time — summed span durations (a parent span includes
  everything nested inside it, the way ``fastrpc:invoke`` includes its
  marshal/queue/transfer children);
* **exclusive** (self) time — inclusive minus the time covered by
  directly nested child spans, i.e. the time attributable to the label
  itself.

Probe-instrumented tracks are stack-disciplined (spans nest; they never
partially overlap), and for such tracks the exclusive times of all
labels sum exactly to the track's busy time — the invariant the tier-1
suite asserts. Partially overlapping spans (possible on hand-recorded
tracks) are attributed to the innermost enclosing span on a best-effort
basis.
"""

from dataclasses import dataclass

from repro.observability.chrome_trace import track_sort_key
from repro.sim import units


@dataclass
class LabelStat:
    """Aggregated time for one (track, label) pair."""

    track: str
    label: str
    count: int
    inclusive_us: float
    exclusive_us: float


def _exclusive_times(spans):
    """Exclusive (self) time per span, parallel to ``spans``.

    ``spans`` must be closed spans on one track sorted by
    ``(start, -end)`` so parents precede their children.
    """
    exclusive = [span.duration for span in spans]
    stack = []  # indices of still-open ancestors
    for index, span in enumerate(spans):
        while stack and spans[stack[-1]].end <= span.start:
            stack.pop()
        if stack:
            parent = stack[-1]
            overlap = min(span.end, spans[parent].end) - span.start
            if overlap > 0.0:
                exclusive[parent] -= overlap
        stack.append(index)
    return [max(0.0, value) for value in exclusive]


def _busy_time(spans):
    """Union of span intervals — total busy time on a track."""
    busy = 0.0
    cursor = float("-inf")
    for span in spans:  # already sorted by start
        if span.end <= cursor:
            continue
        busy += span.end - max(span.start, cursor)
        cursor = span.end
    return busy


class TraceSummary:
    """Per-track, per-label rollup of a :class:`TraceRecorder`."""

    def __init__(self, rows, track_busy_us, total_us):
        #: ``[LabelStat, ...]`` sorted by track order, then self time.
        self.rows = rows
        #: ``{track: busy us}`` — union of the track's span intervals.
        self.track_busy_us = track_busy_us
        #: Wall-clock extent of the trace (last end - first start).
        self.total_us = total_us

    @property
    def tracks(self):
        return list(self.track_busy_us)

    def rows_on(self, track):
        return [row for row in self.rows if row.track == track]

    def track_exclusive_us(self, track):
        """Sum of label self times on a track.

        Equals :attr:`track_busy_us` for stack-disciplined tracks.
        """
        return sum(row.exclusive_us for row in self.rows_on(track))

    def render(self, top=None):
        """Text table, one section per track, hottest labels first.

        ``top`` limits the labels shown per track (None shows all).
        """
        lines = []
        label_width = max(
            [len(row.label) for row in self.rows] + [len("label")]
        )
        for track in self.tracks:
            busy = self.track_busy_us[track]
            lines.append(
                f"[{track}] busy {units.to_ms(busy):.2f} ms "
                f"({busy / self.total_us:.1%} of trace)"
                if self.total_us > 0
                else f"[{track}] busy {units.to_ms(busy):.2f} ms"
            )
            header = (
                f"  {'label':<{label_width}} | count | incl ms | "
                f"self ms | self share"
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            rows = self.rows_on(track)
            if top is not None:
                rows = rows[:top]
            for row in rows:
                share = row.exclusive_us / busy if busy > 0 else 0.0
                lines.append(
                    f"  {row.label:<{label_width}} | {row.count:>5} | "
                    f"{units.to_ms(row.inclusive_us):>7.2f} | "
                    f"{units.to_ms(row.exclusive_us):>7.2f} | {share:>9.1%}"
                )
            lines.append("")
        return "\n".join(lines).rstrip()


def summarize_trace(trace, tracks=None):
    """Roll a :class:`TraceRecorder` up into a :class:`TraceSummary`."""
    by_track = {}
    for span in trace.spans:
        if not span.closed:
            continue
        if tracks is not None and span.track not in tracks:
            continue
        by_track.setdefault(span.track, []).append(span)

    rows = []
    track_busy = {}
    extent_lo, extent_hi = float("inf"), float("-inf")
    for track in sorted(by_track, key=track_sort_key):
        spans = sorted(by_track[track], key=lambda s: (s.start, -s.end))
        extent_lo = min(extent_lo, spans[0].start)
        extent_hi = max(extent_hi, max(span.end for span in spans))
        track_busy[track] = _busy_time(spans)
        exclusive = _exclusive_times(spans)
        stats = {}
        for span, self_us in zip(spans, exclusive):
            stat = stats.get(span.label)
            if stat is None:
                stats[span.label] = LabelStat(
                    track, span.label, 1, span.duration, self_us
                )
            else:
                stat.count += 1
                stat.inclusive_us += span.duration
                stat.exclusive_us += self_us
        rows.extend(
            sorted(stats.values(), key=lambda s: (-s.exclusive_us, s.label))
        )
    total = extent_hi - extent_lo if track_busy else 0.0
    return TraceSummary(rows, track_busy, total)
