"""Semantic checks: unit consistency and resource-protocol safety.

The determinism linter (:mod:`repro.analysis.lint`) catches syntactic
hazards — patterns that break bit-identical replay. This checker
catches *semantic* hazards: code that replays perfectly and computes
the wrong number. Every figure the reproduction regenerates is a
latency or utilization value, so the two silent corruptions are

* **mixed units** — the engine clock counts microseconds, the paper
  reports milliseconds, cost rates are nanoseconds per element; one
  missed conversion shifts a figure by 1000x (or worse, by 1000x only
  on one code path); and
* **leaked simulated resources** — a CPU core, DSP queue slot, or GPU
  grant still held when an exception or :class:`~repro.sim.events.
  Interrupted` unwinds a process distorts exactly the queueing and
  contention behaviour Figs. 5-10 measure, and only for the *rest* of
  that run.

Two passes implement this (``python -m repro semcheck``):

**Units pass.** Unit types are inferred from name suffixes (``_us`` /
``_ms`` / ``_ns`` / ``_mhz`` / ``_uj`` / ``_mj`` / ``_celsius`` — see
:mod:`repro.analysis.unit_types`) on parameters, attributes, locals,
and return names, and propagated through assignment and arithmetic.
Cross-unit arithmetic and comparison, bare ``* 1000`` / ``/ 1000.0``
scale factors outside :mod:`repro.sim.units`, misused converters, and
unit-suffixed arguments bound to differently-suffixed parameters
(including the documented microsecond contracts of ``timeout()`` /
``schedule_callback()`` / ``Sleep`` / ``Work``) are findings.

**Protocol pass.** A flow-sensitive walk of generator process bodies
pairs ``Resource.request()`` with ``release()`` across ``yield``
points and ``try``/``except``/``finally`` edges: a request with no
release on some path (including the interrupt path at any ``yield``),
a release of a never-requested handle, a double release, a ``yield``
of a non-Event value, and a yieldless ``while True`` (zero-time
livelock) are findings.

Suppression, baselines, and exit codes are shared with the linter
(``# repro: allow[rule-id]`` pragmas, an empty committed baseline,
0/1/2); see ``docs/determinism.md``.
"""

import ast
from dataclasses import dataclass

from repro.analysis import unit_types
from repro.analysis.common import (
    AliasResolver,
    Finding,
    LintError,
    RuleInfo,
    check_paths,
    matches_any,
    parse_pragmas,
)
from repro.analysis.common import render_findings as _render_findings

RULES = (
    RuleInfo(
        "unit-mismatch",
        "arithmetic, comparison, or assignment mixes units",
        "convert explicitly through repro.sim.units (ms()/to_ms()/"
        "ns()/...) so both sides share a unit; the suffix on each name "
        "declares its unit.",
    ),
    RuleInfo(
        "magic-conversion",
        "bare power-of-1000 unit scale in arithmetic",
        "spell the conversion with a repro.sim.units helper (to_ms, ms, "
        "ns, to_ns, to_mj, fps_from_ms) or a named units constant; a "
        "bare 1000 hides which way the conversion goes.",
    ),
    RuleInfo(
        "unit-arg-mismatch",
        "argument unit differs from the parameter's declared unit",
        "convert at the call site with repro.sim.units; the parameter's "
        "suffix (or its documented contract — timeout() and "
        "schedule_callback() take microseconds) is the unit the callee "
        "expects.",
    ),
    RuleInfo(
        "resource-leak",
        "resource request not released on every path",
        "hold the grant in `with resource.request() as req:` (released "
        "automatically, even when the process is interrupted at a "
        "yield) or wrap every yield made while holding it in "
        "try/finally: req.release().",
    ),
    RuleInfo(
        "double-release",
        "handle released when it is already released",
        "release exactly once per request; a with-block releases "
        "automatically at exit, so drop the extra explicit release().",
    ),
    RuleInfo(
        "release-unowned",
        "release of a handle that was never requested on some path",
        "move the release() into the branch that issued the request() "
        "(or request unconditionally); releasing an ungranted handle "
        "raises ValueError at runtime.",
    ),
    RuleInfo(
        "yield-non-event",
        "process body yields a value that is not an Event",
        "yield Event-shaped requests only (Sleep/Work/WaitFor, "
        "sim.timeout(), resource requests, store.get()); anything else "
        "makes Process raise TypeError mid-simulation.",
    ),
    RuleInfo(
        "yieldless-loop",
        "unbounded loop with no yield in a process body",
        "yield inside the loop (e.g. sim.timeout(...)) so simulated "
        "time can advance; a yieldless `while True:` livelocks the "
        "engine at a single timestamp.",
    ),
)

RULES_BY_ID = {rule.id: rule for rule in RULES}


@dataclass(frozen=True)
class SemCheckConfig:
    """Where the passes apply.

    ``units_modules`` (fnmatch globs against the resolved posix path)
    name the conversion boundary itself — :mod:`repro.sim.units` mixes
    units *by definition*, so the whole units pass is skipped there.
    """

    units_modules: tuple = ("*/sim/units.py",)


DEFAULT_CONFIG = SemCheckConfig()

#: Import roots the alias resolver tracks (for ``units.*`` calls).
_TRACKED_ROOTS = ("repro", "units")

#: Builtins that pass their argument's unit through unchanged.
_UNIT_PRESERVING_CALLS = frozenset(
    {"abs", "float", "int", "round", "sum", "min", "max", "sorted"}
)

#: Comparison operators that require both sides in the same unit.
_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: Sentinel for a name assigned conflicting units (treated as unknown).
_CONFLICT = "?conflict"


def _own_nodes(body):
    """Walk nodes of a scope without descending into nested defs."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _has_own_yield(func):
    """Whether ``func`` itself (not a nested def) is a generator."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_nodes(func.body)
    )


# ---------------------------------------------------------------------------
# Units pass
# ---------------------------------------------------------------------------


class _UnitsPass:
    """Suffix-inferred unit propagation over one scope (module or def)."""

    def __init__(self, checker, scope_body, func=None):
        self.checker = checker
        self.scope_body = scope_body
        self.func = func
        self.env = {}

    # -- environment ---------------------------------------------------

    def build_env(self):
        if self.func is not None:
            args = self.func.args
            params = list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            )
            for param in params:
                unit = unit_types.suffix_unit(param.arg.lower())
                if unit is not None:
                    self.env[param.arg] = unit
        # Two rounds so chained assignments (a = b_us; c = a) settle.
        for _round in range(2):
            for node in _own_nodes(self.scope_body):
                targets = ()
                value = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = (node.target,), node.value
                if value is None:
                    continue
                inferred = self.unit_of(value)
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    declared = unit_types.suffix_unit(target.id.lower())
                    if declared is not None:
                        self.env[target.id] = declared
                    elif inferred is not None:
                        known = self.env.get(target.id)
                        if known is not None and known != inferred:
                            self.env[target.id] = _CONFLICT
                        else:
                            self.env[target.id] = inferred

    # -- unit inference (pure: never flags) ------------------------------

    def unit_of(self, node):
        """Infer the unit of an expression, or ``None`` when unknown."""
        if isinstance(node, ast.Name):
            unit = self.env.get(node.id)
            if unit == _CONFLICT:
                return None
            if unit is not None:
                return unit
            return unit_types.suffix_unit(node.id.lower())
        if isinstance(node, ast.Attribute):
            return unit_types.suffix_unit(node.attr.lower())
        if isinstance(node, ast.Subscript):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return unit_types.suffix_unit(key.value.lower())
            return None
        if isinstance(node, ast.Call):
            return self._unit_of_call(node)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.BinOp):
            return self._unit_of_binop(node)
        if isinstance(node, ast.IfExp):
            return self._merge_units(
                [self.unit_of(node.body), self.unit_of(node.orelse)]
            )
        if isinstance(node, ast.BoolOp):
            return self._merge_units(
                [self.unit_of(value) for value in node.values]
            )
        if isinstance(node, ast.Starred):
            return self.unit_of(node.value)
        return None

    @staticmethod
    def _merge_units(units):
        known = {unit for unit in units if unit is not None}
        return known.pop() if len(known) == 1 else None

    def _unit_of_call(self, node):
        dotted = self.checker.resolver.dotted(node.func)
        signature = unit_types.converter_signature(dotted)
        if signature is not None:
            return signature[1]
        leaf = _call_leaf(node.func)
        if leaf is not None:
            return unit_types.suffix_unit(leaf.lower())
        return None

    def _unit_of_binop(self, node):
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                return left if left == right else None
            return left or right
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return None
            return left or right
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            if left is not None and right is None:
                return left
            return None
        return None

    # -- flagging walk ---------------------------------------------------

    def run(self):
        self.build_env()
        for node in _own_nodes(self.scope_body):
            if isinstance(node, ast.BinOp):
                self._check_binop(node)
            elif isinstance(node, ast.Compare):
                self._check_compare(node)
            elif isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_assign(node)
            elif isinstance(node, ast.AugAssign):
                self._check_augassign(node)
            elif isinstance(node, ast.Return):
                self._check_return(node)

    def _check_binop(self, node):
        if isinstance(node.op, (ast.Mult, ast.Div)):
            for operand in (node.left, node.right):
                if isinstance(operand, ast.Constant) and \
                        unit_types.is_magic_scale(operand.value):
                    self.checker.flag(
                        "magic-conversion",
                        node,
                        f"bare {operand.value!r} scale factor; the "
                        "conversion direction belongs in a repro.sim."
                        "units helper",
                    )
                    break
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Div)):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if (
                left is not None
                and right is not None
                and left != right
                and (
                    isinstance(node.op, (ast.Add, ast.Sub))
                    or unit_types.same_dimension(left, right)
                )
            ):
                op = {ast.Add: "+", ast.Sub: "-", ast.Div: "/"}[
                    type(node.op)
                ]
                self.checker.flag(
                    "unit-mismatch",
                    node,
                    f"`{left}` {op} `{right}`: operands are in "
                    "different units",
                )

    def _check_compare(self, node):
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, _ORDERED_CMP):
                continue
            left = self.unit_of(operands[index])
            right = self.unit_of(operands[index + 1])
            if left is not None and right is not None and left != right:
                self.checker.flag(
                    "unit-mismatch",
                    node,
                    f"comparison between `{left}` and `{right}` values",
                )

    def _check_call(self, node):
        dotted = self.checker.resolver.dotted(node.func)
        signature = unit_types.converter_signature(dotted)
        leaf = _call_leaf(node.func)
        if signature is not None:
            expected, _returns = signature
            if expected is not None and node.args:
                actual = self.unit_of(node.args[0])
                if actual is not None and actual != expected:
                    self.checker.flag(
                        "unit-arg-mismatch",
                        node,
                        f"{dotted}() converts from `{expected}` but the "
                        f"argument is `{actual}`",
                    )
            return
        if leaf is None:
            return
        parameters = unit_types.declared_parameters(leaf)
        if not parameters:
            parameters = self.checker.module_signatures.get(leaf) or ()
        for position, param_name, expected in parameters:
            argument = None
            for keyword in node.keywords:
                if keyword.arg == param_name:
                    argument = keyword.value
            if argument is None and position < len(node.args):
                argument = node.args[position]
            if argument is None:
                continue
            actual = self.unit_of(argument)
            if actual is not None and actual != expected:
                self.checker.flag(
                    "unit-arg-mismatch",
                    argument,
                    f"{leaf}() parameter `{param_name}` is declared "
                    f"`{expected}` but the argument is `{actual}`",
                )

    def _check_assign(self, node):
        value = node.value if not isinstance(node, ast.AnnAssign) else node.value
        if value is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else (node.target,)
        inferred = self.unit_of(value)
        if inferred is None:
            return
        for target in targets:
            declared = None
            if isinstance(target, ast.Name):
                declared = unit_types.suffix_unit(target.id.lower())
            elif isinstance(target, ast.Attribute):
                declared = unit_types.suffix_unit(target.attr.lower())
            if declared is not None and declared != inferred:
                self.checker.flag(
                    "unit-mismatch",
                    node,
                    f"assigning a `{inferred}` value to a name declared "
                    f"`{declared}`",
                )

    def _check_augassign(self, node):
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        declared = None
        if isinstance(node.target, ast.Name):
            declared = unit_types.suffix_unit(node.target.id.lower())
        elif isinstance(node.target, ast.Attribute):
            declared = unit_types.suffix_unit(node.target.attr.lower())
        inferred = self.unit_of(node.value)
        if declared is not None and inferred is not None \
                and declared != inferred:
            self.checker.flag(
                "unit-mismatch",
                node,
                f"accumulating a `{inferred}` value into a name declared "
                f"`{declared}`",
            )

    def _check_return(self, node):
        if self.func is None or node.value is None:
            return
        declared = unit_types.suffix_unit(self.func.name.lower())
        if declared is None:
            return
        inferred = self.unit_of(node.value)
        if inferred is not None and inferred != declared:
            self.checker.flag(
                "unit-mismatch",
                node,
                f"function name declares `{declared}` but returns a "
                f"`{inferred}` value",
            )


def _call_leaf(func):
    """The rightmost name of a call target, or ``None``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _collect_module_signatures(tree):
    """Same-module callables with unit-suffixed parameters.

    Maps a callable leaf name to a tuple of
    ``(call position, parameter name, unit)`` entries. Methods drop
    their ``self``/``cls`` slot; a class name maps to its ``__init__``.
    Colliding definitions with different unit signatures are dropped —
    the pass only checks what it can resolve unambiguously.
    """

    signatures = {}

    def record(name, params, skip_first):
        entries = []
        offset = 1 if skip_first else 0
        for index, param in enumerate(params[offset:]):
            unit = unit_types.suffix_unit(param.arg.lower())
            if unit is not None:
                entries.append((index, param.arg, unit))
        entries = tuple(entries)
        if name in signatures and signatures[name] != entries:
            signatures[name] = None
        else:
            signatures[name] = entries

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = list(node.args.posonlyargs) + list(node.args.args)
            record(node.name, params, skip_first=False)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    params = list(stmt.args.posonlyargs) + list(
                        stmt.args.args
                    )
                    if stmt.name == "__init__":
                        record(node.name, params, skip_first=True)
                    else:
                        # Re-record the method with the self slot
                        # removed; collisions with the plain-function
                        # record of the same name resolve to ambiguity.
                        record(stmt.name, params, skip_first=True)
    return {
        name: entries
        for name, entries in signatures.items()
        if entries  # drop ambiguous (None) and suffix-free signatures
    }


# ---------------------------------------------------------------------------
# Protocol pass
# ---------------------------------------------------------------------------

#: Handle states tracked by the protocol pass.
_REQ = "requested"
_REL = "released"
_ABSENT = "absent"

#: Call names that construct yieldable events (process-body heuristic).
_EVENT_CONSTRUCTORS = frozenset(
    {"Sleep", "Work", "WaitFor", "Timeout", "Event", "AllOf", "AnyOf"}
)
_EVENT_METHODS = frozenset(
    {"timeout", "event", "request", "any_of", "all_of", "get", "process"}
)


def _is_eventish(node, request_names):
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in _EVENT_CONSTRUCTORS
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _EVENT_METHODS
        return False
    if isinstance(node, ast.Name):
        return node.id in request_names
    return False


def _is_plainly_non_event(node):
    """Expressions that are certainly not Event instances."""
    if node is None:  # bare ``yield``
        return True
    return isinstance(
        node,
        (
            ast.Constant,
            ast.List,
            ast.Tuple,
            ast.Dict,
            ast.Set,
            ast.BinOp,
            ast.Compare,
            ast.BoolOp,
            ast.JoinedStr,
        ),
    )


class _ProtocolPass:
    """Flow-sensitive request/release pairing over one generator body."""

    def __init__(self, checker, func):
        self.checker = checker
        self.func = func
        #: handle name -> set of states on the paths reaching here.
        self.state = {}
        #: stack of protection frames (handle names released by an
        #: enclosing ``finally``, broad handler, or handle-``with``).
        self.protections = []
        #: >0 while walking exception-handler bodies: releases there are
        #: cleanup (the body's own release cannot have run first), so the
        #: "released on some path" double-release case does not apply.
        self.cleanup_depth = 0
        self.leak_reported = set()
        self.request_names = {
            stmt.targets[0].id
            for stmt in _own_nodes(func.body)
            if isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_request_call(stmt.value)
        }
        self.process_like = self._detect_process_like()

    def _detect_process_like(self):
        for node in _own_nodes(self.func.body):
            if isinstance(node, ast.Yield) and node.value is not None \
                    and _is_eventish(node.value, self.request_names):
                return True
            if _is_request_call(node):
                return True
        return False

    # -- state helpers ---------------------------------------------------

    def _protected(self, name):
        return any(name in frame for frame in self.protections)

    def _merge(self, state_a, state_b):
        merged = {}
        for name in set(state_a) | set(state_b):
            merged[name] = state_a.get(name, {_ABSENT}) | state_b.get(
                name, {_ABSENT}
            )
        return merged

    def _leak(self, name, node, message):
        if name in self.leak_reported:
            return
        self.leak_reported.add(name)
        self.checker.flag("resource-leak", node, message)

    def _check_held_at_exit(self, node, how):
        for name, states in sorted(self.state.items()):
            if _REQ in states and not self._protected(name):
                self._leak(
                    name,
                    node,
                    f"request `{name}` is still held {how}",
                )

    # -- events within simple statements ---------------------------------

    def _scan_events(self, stmt):
        events = []
        for node in ast.walk(stmt):
            if _is_request_call(node):
                target = None
                if (
                    isinstance(stmt, ast.Assign)
                    and stmt.value is node
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    target = stmt.targets[0].id
                discarded = isinstance(stmt, ast.Expr) and stmt.value is node
                events.append(("request", target, discarded, node))
            elif isinstance(node, ast.Call):
                handle = _release_handle(node)
                if handle is not None:
                    events.append(("release", handle, False, node))
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                events.append(("yield", None, False, node))
        events.sort(key=lambda item: (item[3].lineno, item[3].col_offset))
        return events

    def _apply_request(self, name, discarded, node):
        if discarded or name is None:
            if discarded:
                self._leak(
                    f"<anonymous:{node.lineno}>",
                    node,
                    "request() handle discarded; the grant can never be "
                    "released",
                )
            return
        states = self.state.get(name)
        if states is not None and _REQ in states:
            self._leak(
                name,
                node,
                f"`{name}` reassigned by request() while the previous "
                "grant is still held",
            )
        self.state[name] = {_REQ}

    def _apply_release(self, name, node, in_finally=False):
        states = self.state.get(name)
        if states is None:
            return
        if states <= {_REL}:
            self.checker.flag(
                "double-release",
                node,
                f"`{name}` has already been released on every path "
                "reaching this release()",
            )
        elif _REL in states and not in_finally and not self.cleanup_depth:
            self.checker.flag(
                "double-release",
                node,
                f"`{name}` was already released on some path reaching "
                "this release()",
            )
        elif _ABSENT in states:
            self.checker.flag(
                "release-unowned",
                node,
                f"`{name}` was never requested on some path reaching "
                "this release()",
            )
        self.state[name] = {_REL}

    def _apply_yield(self, node):
        if self.process_like and isinstance(node, ast.Yield) \
                and _is_plainly_non_event(node.value):
            what = "a bare yield" if node.value is None else (
                "a non-Event value"
            )
            self.checker.flag(
                "yield-non-event",
                node,
                f"process yields {what}; the engine only accepts Events",
            )
        for name, states in sorted(self.state.items()):
            if _REQ in states and not self._protected(name):
                self._leak(
                    name,
                    node,
                    f"`{name}` is held across a yield with no finally/"
                    "with protection; an interrupt here leaks the grant",
                )

    # -- block walking ---------------------------------------------------

    def run(self):
        self._walk_block(self.func.body)
        end = self.func.body[-1] if self.func.body else self.func
        self._check_held_at_exit(end, "when the process body ends")

    def _walk_block(self, body):
        """Walk a statement list; returns False when the path dies."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes are analyzed separately
            if isinstance(stmt, ast.If):
                self._walk_if(stmt)
            elif isinstance(stmt, (ast.While, ast.For)):
                self._walk_loop(stmt)
            elif isinstance(stmt, ast.Try):
                self._walk_try(stmt)
            elif isinstance(stmt, ast.With):
                self._walk_with(stmt)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._run_events(stmt)
                self._check_held_at_exit(stmt, "at this return")
                return False
            elif isinstance(stmt, ast.Raise):
                self._run_events(stmt)
                self._check_held_at_exit(
                    stmt, "when this exception propagates"
                )
                return False
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                return False
            else:
                self._run_events(stmt)
        return True

    def _run_events(self, stmt):
        for kind, name, discarded, node in self._scan_events(stmt):
            if kind == "request":
                self._apply_request(name, discarded, node)
            elif kind == "release":
                self._apply_release(name, node)
            else:
                self._apply_yield(node)

    def _walk_if(self, stmt):
        self._run_events(stmt.test)
        entry = {name: set(states) for name, states in self.state.items()}
        then_live = self._walk_block(stmt.body)
        then_state = self.state
        self.state = entry
        else_live = self._walk_block(stmt.orelse)
        else_state = self.state
        if then_live and else_live:
            self.state = self._merge(then_state, else_state)
        elif then_live:
            self.state = then_state
        else:
            self.state = else_state

    def _walk_loop(self, stmt):
        if isinstance(stmt, ast.While):
            self._run_events(stmt.test)
            self._check_yieldless_loop(stmt)
        else:
            self._run_events(stmt.iter)
        entry = {name: set(states) for name, states in self.state.items()}
        self._walk_block(stmt.body)
        # Second pass from the merged state catches a request carried
        # into the next iteration while still held; findings de-dupe.
        self.state = self._merge(entry, self.state)
        self._walk_block(stmt.body)
        self.state = self._merge(entry, self.state)
        self._walk_block(stmt.orelse)

    def _check_yieldless_loop(self, stmt):
        if not self.process_like:
            return
        test = stmt.test
        is_forever = isinstance(test, ast.Constant) and bool(test.value)
        if not is_forever:
            return
        for node in _own_nodes(stmt.body):
            if isinstance(
                node,
                (ast.Yield, ast.YieldFrom, ast.Return, ast.Break, ast.Raise),
            ):
                return
        self.checker.flag(
            "yieldless-loop",
            stmt,
            "`while True:` with no yield never advances simulated time",
        )

    def _walk_try(self, stmt):
        finally_releases = _released_names(stmt.finalbody)
        handler_releases = set()
        for handler in stmt.handlers:
            if _handler_catches_interrupt(handler):
                handler_releases |= _released_names(handler.body)
        entry = {name: set(states) for name, states in self.state.items()}
        self.protections.append(finally_releases | handler_releases)
        body_live = self._walk_block(stmt.body)
        self.protections.pop()
        body_state = self.state
        if body_live:
            self._walk_block(stmt.orelse)
            body_state = self.state
        exit_states = [body_state] if body_live else []
        for handler in stmt.handlers:
            # A handler can run after any prefix of the body: merge the
            # entry and body-exit states as its conservative input.
            self.state = self._merge(entry, body_state)
            self.cleanup_depth += 1
            handler_live = self._walk_block(handler.body)
            self.cleanup_depth -= 1
            if handler_live:
                exit_states.append(self.state)
        if exit_states:
            merged = exit_states[0]
            for other in exit_states[1:]:
                merged = self._merge(merged, other)
            self.state = merged
        else:
            self.state = self._merge(entry, body_state)
        for stmt_final in stmt.finalbody:
            self._walk_finally(stmt_final)

    def _walk_finally(self, stmt):
        """Finally bodies run on every exit: releases there are softer."""
        if isinstance(stmt, (ast.If, ast.While, ast.For, ast.Try, ast.With)):
            self._walk_block([stmt])
            return
        for kind, name, discarded, node in self._scan_events(stmt):
            if kind == "request":
                self._apply_request(name, discarded, node)
            elif kind == "release":
                self._apply_release(name, node, in_finally=True)
            else:
                self._apply_yield(node)

    def _walk_with(self, stmt):
        frame = set()
        for item in stmt.items:
            context = item.context_expr
            if _is_request_call(context):
                if isinstance(item.optional_vars, ast.Name):
                    name = item.optional_vars.id
                    self._apply_request(name, False, context)
                    frame.add(name)
                # ``with res.request():`` grants and auto-releases; no
                # handle escapes, so nothing to track.
            elif isinstance(context, ast.Name) and context.id in self.state:
                frame.add(context.id)
            else:
                self._run_events(context)
        self.protections.append(frame)
        self._walk_block(stmt.body)
        self.protections.pop()
        for name in frame:
            # The context manager releases idempotently at exit.
            self.state[name] = {_REL}


def _is_request_call(node):
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "request"
    )


def _release_handle(node):
    """Handle name targeted by a release call, or ``None``."""
    if not isinstance(node, ast.Call) or not isinstance(
        node.func, ast.Attribute
    ) or node.func.attr != "release":
        return None
    if not node.args and isinstance(node.func.value, ast.Name):
        return node.func.value.id
    if len(node.args) == 1 and isinstance(node.args[0], ast.Name):
        return node.args[0].id
    return None


def _released_names(body):
    names = set()
    for stmt in body:
        for node in ast.walk(stmt):
            handle = _release_handle(node)
            if handle is not None:
                names.add(handle)
    return names


def _handler_catches_interrupt(handler):
    """Whether an except clause would catch :class:`Interrupted`."""
    if handler.type is None:
        return True
    names = set()
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return bool(names & {"Interrupted", "Exception", "BaseException"})


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


class _Checker:
    """One module's semcheck run: shared flag sink for both passes."""

    def __init__(self, path, tree):
        self.path = path
        self.findings = []
        self._seen = set()
        self.resolver = AliasResolver(tree, _TRACKED_ROOTS)
        self.module_signatures = _collect_module_signatures(tree)

    def flag(self, rule, node, message):
        finding = Finding(
            rule, self.path, node.lineno, node.col_offset, message
        )
        if finding.key() in self._seen:
            return
        self._seen.add(finding.key())
        self.findings.append(finding)


def semcheck_source(source, path, config=None, resolved_path=None):
    """Semcheck one module's source text; returns ``(findings, errors)``.

    ``path`` is the display path attached to findings; ``resolved_path``
    (defaulting to ``path``) is what the config globs match against.
    """
    config = config or DEFAULT_CONFIG
    resolved_path = resolved_path or path
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [], [
            LintError(path, exc.lineno or 0, f"syntax error: {exc.msg}")
        ]
    line_allows, file_allows, errors = parse_pragmas(
        source, path, applicable=set(RULES_BY_ID)
    )
    checker = _Checker(path, tree)
    in_units_module = matches_any(resolved_path, config.units_modules)
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if not in_units_module:
        _UnitsPass(checker, tree.body).run()
        for func in functions:
            _UnitsPass(checker, func.body, func=func).run()
    for func in functions:
        if _has_own_yield(func):
            _ProtocolPass(checker, func).run()
    findings = sorted(
        (
            finding
            for finding in checker.findings
            if finding.rule not in file_allows
            and finding.rule not in line_allows.get(finding.line, ())
        ),
        key=lambda finding: finding.key(),
    )
    return findings, errors


def semcheck_paths(paths, config=None):
    """Semcheck every ``*.py`` file under ``paths``."""
    return check_paths(
        paths,
        lambda source, display, resolved: semcheck_source(
            source, display, config=config, resolved_path=resolved
        ),
    )


def render_findings(findings, show_hints=True):
    """Human-readable report lines for semcheck findings."""
    return _render_findings(findings, RULES_BY_ID, show_hints=show_hints)
