"""Whole-program architecture check: layering and cross-process safety.

The per-file checkers (:mod:`repro.analysis.lint`,
:mod:`repro.analysis.semcheck`) see one module at a time; the hazards
that survive them are *relational*: a reverse import that quietly
couples the simulation substrate to the analysis layer, a closure
handed to a worker pool that cannot pickle, hash-ordered data that is
sorted nowhere on its way into a committed artifact. ``archcheck``
parses the whole tree at once, builds the module import graph plus
per-function call/dataflow summaries, and checks them against a
declarative contract (``.repro-arch.toml``).

Rule families (see :data:`RULES` and ``docs/analysis.md``)
----------------------------------------------------------

========================  =============================================
``layer-violation``       an import edge that points *up* the declared
                          layer order, or along an explicitly forbidden
                          edge
``deep-import``           a module outside a surface package importing
                          its internals instead of the package surface
                          or a sanctioned submodule
``worker-capture``        a lambda / nested closure handed to a process
                          pool or Supervisor, which cannot pickle (or
                          drags its enclosing scope across the fork)
``fork-unsafe-global``    module-level mutable state both mutated in
                          its module and reachable from a worker entry
                          point — each worker mutates its own copy and
                          the parent never sees it
``nondet-escape``         an artifact-producing module calling a
                          function elsewhere whose return value is
                          built by unsorted dict/set iteration
``sim-blocking-call``     real ``time.sleep``/clock/file/socket I/O
                          inside (or one call below) a DES process body
========================  =============================================

Same dialect as the other checkers: ``# repro: allow[rule-id]``
pragmas, an (empty, committed) baseline, ``--format=json``, exit codes
0/1/2.
"""

import ast
import pathlib
from dataclasses import dataclass, field

from repro.analysis.common import (
    AliasResolver,
    Finding,
    LintError,
    RuleInfo,
    display_path,
    iter_python_files,
    matches_any,
)
from repro.analysis.common import parse_pragmas as _parse_pragmas
from repro.analysis.common import render_findings as _render_findings


RULES = (
    RuleInfo(
        "layer-violation",
        "import edge points up the layer order (or along a banned edge)",
        "depend downward only: move the shared code below both layers "
        "(like repro.core.result) or invert the dependency; the layer "
        "order lives in .repro-arch.toml.",
    ),
    RuleInfo(
        "deep-import",
        "import of a surface package's internals from outside it",
        "import from the package surface (`from repro.fleet import "
        "run_fleet`) or a sanctioned submodule listed in "
        ".repro-arch.toml [surfaces].sanctioned.",
    ),
    RuleInfo(
        "worker-capture",
        "unpicklable callable handed to a worker pool",
        "submit a module-level function; lambdas and nested closures "
        "either fail to pickle or drag their enclosing scope across "
        "the process boundary.",
    ),
    RuleInfo(
        "fork-unsafe-global",
        "mutable module global reachable from a worker entry point",
        "each worker process mutates its own copy and the parent never "
        "observes it; thread the state through the payload dict or "
        "return it from the entry point.",
    ),
    RuleInfo(
        "nondet-escape",
        "dict/set-iteration order escapes into an artifact",
        "the callee builds its return value by unsorted dict/set "
        "iteration and this caller exports it; sort inside the callee "
        "so every consumer is safe.",
    ),
    RuleInfo(
        "sim-blocking-call",
        "real clock/file/socket I/O reachable from a DES process body",
        "simulated time must come from the engine and I/O from "
        "injected costs; hoist the real I/O out of the process (export "
        "after the run) or inject it (self._sleep-style hooks).",
    ),
)

RULES_BY_ID = {rule.id: rule for rule in RULES}

#: Default contract filename, looked up in the working directory.
CONTRACT_NAME = ".repro-arch.toml"

#: Call targets that block on the host: real sleeps and clocks, file
#: opens, sockets. Resolved through import aliases like lint's sets.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "open",
        "io.open",
        "socket.socket",
        "socket.create_connection",
    }
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "setdefault", "update",
    }
)

#: Constructors whose result is a mutable container.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
     "deque"}
)

#: Import roots the per-function alias resolver always tracks; the
#: roots of the program's own packages are added per run.
_TRACKED_ROOTS = ("time", "socket", "io", "functools", "concurrent")


# ---------------------------------------------------------------------
# Contract
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class ArchContract:
    """The declarative architecture: layers, surfaces, worker entries."""

    #: Layer names, bottom -> top.
    order: tuple = ()
    #: layer name -> module dotted-prefix tuple.
    layer_modules: dict = field(default_factory=dict)
    #: (from_layer, to_layer) edges banned beyond the order.
    forbidden: tuple = ()
    #: Packages whose internals are private outside the package.
    surface_packages: tuple = ()
    #: Submodules of surface packages that are sanctioned surfaces.
    sanctioned: tuple = ()
    #: Dotted function names handed to worker processes.
    worker_entrypoints: tuple = ()
    #: fnmatch globs (resolved paths) of artifact-producing modules.
    artifact_modules: tuple = ()
    #: Layers whose generators are presumed DES process bodies.
    process_layers: tuple = ()
    #: fnmatch globs of modules allowed to block regardless.
    blocking_allow: tuple = ()

    def validate(self, source_path):
        """Contract-internal consistency; returns a LintError list."""
        errors = []
        known = set(self.order)
        for layer in self.layer_modules:
            if layer not in known:
                errors.append(LintError(
                    source_path, 0,
                    f"[layers.modules] names undeclared layer {layer!r} "
                    f"(order: {', '.join(self.order)})",
                ))
        for edge in self.forbidden:
            bad = [layer for layer in edge if layer not in known]
            if len(edge) != 2 or bad:
                errors.append(LintError(
                    source_path, 0,
                    f"[layers.forbidden] edge {list(edge)!r} must be a "
                    "[from, to] pair of declared layers",
                ))
        for layer in self.process_layers:
            if layer not in known:
                errors.append(LintError(
                    source_path, 0,
                    f"[blocking].process_layers names undeclared layer "
                    f"{layer!r}",
                ))
        return errors

    def layer_of(self, module):
        """Layer name for a dotted module, by longest prefix match."""
        best = None
        best_len = -1
        for layer, prefixes in self.layer_modules.items():
            for prefix in prefixes:
                if module == prefix or module.startswith(prefix + "."):
                    if len(prefix) > best_len:
                        best, best_len = layer, len(prefix)
        return best

    def layer_index(self, layer):
        return self.order.index(layer)

    def surface_package_of(self, module):
        """The surface package ``module`` belongs to, if any (longest)."""
        best = None
        for package in self.surface_packages:
            if module == package or module.startswith(package + "."):
                if best is None or len(package) > len(best):
                    best = package
        return best

    def is_sanctioned(self, module):
        return any(
            module == entry or module.startswith(entry + ".")
            for entry in self.sanctioned
        )


def _parse_toml(text, path):
    """Parse the contract TOML.

    Uses :mod:`tomllib` where available (3.11+); otherwise a fallback
    parser for the subset the contract uses — ``[dotted.tables]``,
    string values, and (nested, multiline) string arrays, whose syntax
    is identical to Python literals.
    """
    try:
        import tomllib
    except ImportError:
        tomllib = None
    if tomllib is not None:
        return tomllib.loads(text)
    return _parse_toml_subset(text, path)


def _parse_toml_subset(text, path):
    data = {}
    table = data
    pending_key = None
    pending_value = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if pending_key is None and (not line or line.startswith("#")):
            continue
        if pending_key is None and line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"{path}:{lineno}: malformed table header")
            table = data
            for part in line[1:-1].split("."):
                table = table.setdefault(part.strip(), {})
            continue
        if pending_key is None:
            key, _, value = line.partition("=")
            if not _:
                raise ValueError(f"{path}:{lineno}: expected key = value")
            pending_key, pending_value = key.strip(), [value.strip()]
        else:
            pending_value.append(line)
        joined = " ".join(pending_value)
        if joined.count("[") > joined.count("]"):
            continue  # multiline array still open
        # Comments may trail a closed value; strings in the contract
        # never contain '#', so a plain split is enough here.
        joined = joined.split("#")[0].strip()
        try:
            table[pending_key] = ast.literal_eval(joined)
        except (ValueError, SyntaxError) as exc:
            raise ValueError(
                f"{path}: bad value for {pending_key!r}: {exc}"
            ) from exc
        pending_key, pending_value = None, []
    if pending_key is not None:
        raise ValueError(f"{path}: unterminated array for {pending_key!r}")
    return data


def load_contract(path=None):
    """Load the contract; returns ``(ArchContract | None, errors)``.

    With no explicit ``path``, looks for :data:`CONTRACT_NAME` in the
    working directory; a missing default is an error — archcheck
    without a contract checks nothing and must not report "clean".
    """
    contract_path = pathlib.Path(path or CONTRACT_NAME)
    display = str(contract_path)
    try:
        text = contract_path.read_text()
    except OSError as exc:
        return None, [LintError(display, 0, f"unreadable contract: {exc}")]
    try:
        data = _parse_toml(text, display)
    except ValueError as exc:
        return None, [LintError(display, 0, f"malformed contract: {exc}")]
    layers = data.get("layers", {})
    surfaces = data.get("surfaces", {})
    blocking = data.get("blocking", {})
    contract = ArchContract(
        order=tuple(layers.get("order", ())),
        layer_modules={
            layer: tuple(prefixes)
            for layer, prefixes in layers.get("modules", {}).items()
        },
        forbidden=tuple(
            tuple(edge) for edge in layers.get("forbidden", {}).get(
                "edges", ()
            )
        ),
        surface_packages=tuple(surfaces.get("packages", ())),
        sanctioned=tuple(surfaces.get("sanctioned", ())),
        worker_entrypoints=tuple(
            data.get("workers", {}).get("entrypoints", ())
        ),
        artifact_modules=tuple(data.get("artifacts", {}).get("modules", ())),
        process_layers=tuple(blocking.get("process_layers", ())),
        blocking_allow=tuple(blocking.get("allow", ())),
    )
    errors = contract.validate(display)
    if errors:
        return None, errors
    return contract, []


# ---------------------------------------------------------------------
# Program model
# ---------------------------------------------------------------------


@dataclass
class FunctionSummary:
    """What one function does, as far as the rules care."""

    qualname: str
    module: str
    name: str
    lineno: int
    is_generator: bool = False
    #: Resolved call targets in the body: (dotted, lineno, col).
    calls: list = field(default_factory=list)
    #: Blocking calls in the body: (dotted, lineno, col).
    blocking: list = field(default_factory=list)
    #: Return value shaped by unsorted dict/set iteration.
    order_dependent: bool = False
    #: Module-global names the body reads (locals excluded).
    global_reads: set = field(default_factory=set)
    #: name -> lineno of the first read, for finding locations.
    global_read_lines: dict = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module of the program under analysis."""

    name: str
    display: str
    resolved: str
    tree: object
    source: str
    #: Import edges: (target_module, lineno, col).
    imports: list = field(default_factory=list)
    #: qualname -> FunctionSummary (methods use Class.method).
    functions: dict = field(default_factory=dict)
    #: Mutable module-level containers that are also mutated:
    #: name -> definition lineno.
    fork_hazard_globals: dict = field(default_factory=dict)
    #: worker-capture findings collected during the module walk.
    capture_findings: list = field(default_factory=list)


def _module_name(file_path):
    """Dotted module name from the package layout on disk."""
    file_path = pathlib.Path(file_path)
    parts = [] if file_path.stem == "__init__" else [file_path.stem]
    parent = file_path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts = [file_path.parent.name]
    return ".".join(reversed(parts))


def _own_nodes(node):
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _bound_names(target):
    """Names an assignment/loop target *binds* in the local scope.

    ``obj[key] = v`` and ``obj.attr = v`` mutate ``obj`` but bind
    nothing — descending into those would misclassify module globals
    as locals and hide their reads from fork-safety analysis.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)


def _import_edges(tree, module, all_modules):
    """Import edges of one module, submodule imports resolved.

    ``from repro import viz`` really depends on ``repro.viz`` when that
    is a module of the program; recording the submodule (rather than
    the stated package) is what lets the layer rules see the true edge.
    """
    edges = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append((alias.name, node.lineno, node.col_offset))
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".")
                parts = parts[: len(parts) - node.level]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                target = f"{base}.{alias.name}"
                if target not in all_modules:
                    target = base
                edges.append((target, node.lineno, node.col_offset))
    return edges


class _ModuleAnalyzer(ast.NodeVisitor):
    """Single pass over one module: summaries, globals, pool submits."""

    def __init__(self, info, module_functions, program_roots=()):
        self.info = info
        self._module_functions = module_functions
        self._resolver = AliasResolver(
            info.tree, _TRACKED_ROOTS + tuple(program_roots)
        )
        #: Stack of (FunctionSummary | None, local-callable-names set).
        self._scopes = []
        self._class_stack = []

    # -- resolution ----------------------------------------------------

    def _dotted(self, node):
        dotted = self._resolver.dotted(node)
        if dotted is None:
            return None
        if "." not in dotted and dotted in self._module_functions:
            return f"{self.info.name}.{dotted}"
        return dotted

    # -- scope plumbing ------------------------------------------------

    def visit_ClassDef(self, node):
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node):
        if self._scopes:
            # A nested def: its name is a closure in the parent scope.
            self._scopes[-1][1].add(node.name)
        qual_parts = self._class_stack + [node.name]
        summary = FunctionSummary(
            qualname=f"{self.info.name}.{'.'.join(qual_parts)}",
            module=self.info.name,
            name=node.name,
            lineno=node.lineno,
        )
        self._summarize(node, summary)
        # Module-level functions are call-resolvable; methods and nested
        # defs are kept too (their own bodies are still checked).
        self.info.functions.setdefault(summary.qualname, summary)
        self._scopes.append((summary, set()))
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _summarize(self, node, summary):
        locals_ = {arg.arg for arg in (
            node.args.args + node.args.posonlyargs + node.args.kwonlyargs
        )}
        if node.args.vararg:
            locals_.add(node.args.vararg.arg)
        if node.args.kwarg:
            locals_.add(node.args.kwarg.arg)
        # `global` declarations win over any local assignment of the
        # same name, so they are collected before the main pass.
        declared_global = set()
        for child in _own_nodes(node):
            if isinstance(child, ast.Global):
                declared_global.update(child.names)
        has_value_return = False
        for child in _own_nodes(node):
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                summary.is_generator = True
            elif isinstance(child, ast.Return) and child.value is not None:
                has_value_return = True
            elif isinstance(child, ast.Call):
                dotted = self._dotted(child.func)
                if dotted is not None:
                    where = (dotted, child.lineno, child.col_offset)
                    summary.calls.append(where)
                    if dotted in _BLOCKING_CALLS:
                        summary.blocking.append(where)
            elif isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    locals_.update(_bound_names(target))
            elif isinstance(child, (ast.For, ast.comprehension)):
                locals_.update(_bound_names(child.target))
        locals_ -= declared_global
        for child in _own_nodes(node):
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Load
            ):
                if child.id not in locals_:
                    summary.global_reads.add(child.id)
                    summary.global_read_lines.setdefault(
                        child.id, child.lineno
                    )
        summary.order_dependent = has_value_return and self._order_dependent(
            node
        )

    def _order_dependent(self, node):
        parents = {}
        for parent in _own_nodes(node):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent

        def inside_sorted(target):
            current = parents.get(target)
            while current is not None:
                if (
                    isinstance(current, ast.Call)
                    and isinstance(current.func, ast.Name)
                    and current.func.id == "sorted"
                ):
                    return True
                current = parents.get(current)
            return False

        for child in _own_nodes(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "items"
                and not child.args
                and not child.keywords
                and not inside_sorted(child)
            ):
                return True
            if isinstance(child, (ast.For, ast.comprehension)):
                iterated = child.iter
                if isinstance(iterated, (ast.Set, ast.SetComp)) or (
                    isinstance(iterated, ast.Call)
                    and isinstance(iterated.func, ast.Name)
                    and iterated.func.id == "set"
                    and not inside_sorted(iterated)
                ):
                    return True
        return False

    # -- worker-capture ------------------------------------------------

    def visit_Call(self, node):
        callable_arg = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "map")
            and self._looks_like_pool(node.func.value)
            and node.args
        ):
            callable_arg = node.args[0]
        else:
            dotted = self._dotted(node.func) or ""
            if dotted.rsplit(".", 1)[-1] == "Supervisor":
                for keyword in node.keywords:
                    if keyword.arg == "task":
                        callable_arg = keyword.value
        if callable_arg is not None:
            self._check_capture(node, callable_arg)
        self.generic_visit(node)

    def _looks_like_pool(self, receiver):
        dotted = (self._resolver.dotted(receiver) or "").lower()
        return "pool" in dotted or "executor" in dotted

    def _check_capture(self, node, callable_arg):
        while (
            isinstance(callable_arg, ast.Call)
            and (self._dotted(callable_arg.func) or "").endswith("partial")
            and callable_arg.args
        ):
            callable_arg = callable_arg.args[0]
        if isinstance(callable_arg, ast.Lambda):
            self.info.capture_findings.append(Finding(
                "worker-capture", self.info.display,
                callable_arg.lineno, callable_arg.col_offset,
                "lambda submitted to a worker pool cannot pickle",
            ))
        elif isinstance(callable_arg, ast.Name):
            for _, local_callables in self._scopes:
                if callable_arg.id in local_callables:
                    self.info.capture_findings.append(Finding(
                        "worker-capture", self.info.display,
                        callable_arg.lineno, callable_arg.col_offset,
                        f"nested function {callable_arg.id!r} submitted "
                        "to a worker pool captures its enclosing scope",
                    ))
                    break

    def visit_Lambda(self, node):
        # Track `name = lambda ...` so submitting `name` is flagged.
        self.generic_visit(node)

    def visit_Assign(self, node):
        if self._scopes and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1][1].add(target.id)
        self.generic_visit(node)


def _collect_fork_hazards(info):
    """Module-level mutable containers that something also mutates."""
    candidates = {}
    for node in info.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                    ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                candidates[target.id] = node.lineno

    if not candidates:
        return {}
    mutated = set()
    for node in ast.walk(info.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            mutated.add(node.func.value.id)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [getattr(node, "target", None)] if not isinstance(
                    node, ast.Delete
                )
                else node.targets
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    mutated.add(target.value.id)
        elif isinstance(node, ast.Global):
            mutated.update(node.names)
    return {
        name: lineno
        for name, lineno in candidates.items()
        if name in mutated
    }


def build_program(paths):
    """Parse every module under ``paths`` into a program model.

    Returns ``(modules, errors)`` where ``modules`` maps dotted names
    to :class:`ModuleInfo`.
    """
    files = []
    errors = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except OSError as exc:
            errors.append(LintError(str(file_path), 0, f"unreadable: {exc}"))
            continue
        files.append((file_path, source))

    modules = {}
    for file_path, source in files:
        display = display_path(file_path)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            errors.append(
                LintError(display, exc.lineno or 0,
                          f"syntax error: {exc.msg}")
            )
            continue
        name = _module_name(file_path)
        modules[name] = ModuleInfo(
            name=name,
            display=display,
            resolved=file_path.resolve().as_posix(),
            tree=tree,
            source=source,
        )

    all_names = set(modules)
    program_roots = sorted({name.split(".")[0] for name in modules})
    for info in modules.values():
        info.imports = _import_edges(info.tree, info.name, all_names)
        module_functions = {
            node.name
            for node in info.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        _ModuleAnalyzer(info, module_functions, program_roots).visit(info.tree)
        info.fork_hazard_globals = _collect_fork_hazards(info)
    return modules, errors


# ---------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------


def _function_index(modules):
    """qualname -> (FunctionSummary, ModuleInfo) over the program."""
    index = {}
    for info in modules.values():
        for qualname, summary in info.functions.items():
            index[qualname] = (summary, info)
    return index


def _check_layers(modules, contract):
    findings = []
    for info in modules.values():
        importer_layer = contract.layer_of(info.name)
        importer_package = contract.surface_package_of(info.name)
        for target, lineno, col in info.imports:
            target_layer = contract.layer_of(target)
            if importer_layer is not None and target_layer is not None:
                up = contract.layer_index(target_layer) > (
                    contract.layer_index(importer_layer)
                )
                banned = (importer_layer, target_layer) in contract.forbidden
                if up or banned:
                    why = (
                        "explicitly forbidden edge" if banned and not up
                        else "imports up the layer order"
                    )
                    findings.append(Finding(
                        "layer-violation", info.display, lineno, col,
                        f"{info.name} (layer {importer_layer!r}) imports "
                        f"{target} (layer {target_layer!r}): {why}",
                    ))
                    continue
            package = contract.surface_package_of(target)
            if (
                package is not None
                and target != package
                and importer_package != package
                and not contract.is_sanctioned(target)
                and target in modules
            ):
                findings.append(Finding(
                    "deep-import", info.display, lineno, col,
                    f"{info.name} imports {target}, an internal of "
                    f"{package}; use the package surface or a "
                    "sanctioned submodule",
                ))
    return findings


def _check_fork_safety(modules, contract):
    findings = []
    for info in modules.values():
        findings.extend(info.capture_findings)

    index = _function_index(modules)
    flagged = set()
    for entry in contract.worker_entrypoints:
        if entry not in index:
            continue
        entry_summary, entry_info = index[entry]
        frontier = [(entry_summary, entry_info)]
        for dotted, _, _ in entry_summary.calls:
            if dotted in index:
                frontier.append(index[dotted])
        for summary, owner in frontier:
            hazards = summary.global_reads & set(owner.fork_hazard_globals)
            for name in sorted(hazards):
                key = (owner.name, name)
                if key in flagged:
                    continue
                flagged.add(key)
                findings.append(Finding(
                    "fork-unsafe-global", owner.display,
                    owner.fork_hazard_globals[name], 0,
                    f"mutable module global {name!r} is read by "
                    f"{summary.qualname} (reachable from worker entry "
                    f"{entry}); workers mutate private copies",
                ))
    return findings


def _check_nondet_escape(modules, contract):
    findings = []
    index = _function_index(modules)
    for info in modules.values():
        if not matches_any(info.resolved, contract.artifact_modules):
            continue
        for summary in info.functions.values():
            for dotted, lineno, col in summary.calls:
                callee = index.get(dotted)
                if callee is None:
                    continue
                callee_summary, callee_info = callee
                if callee_info is info:
                    continue  # same module: lint's unsorted-items turf
                if matches_any(
                    callee_info.resolved, contract.artifact_modules
                ):
                    continue  # callee is checked as an artifact module
                if callee_summary.order_dependent:
                    findings.append(Finding(
                        "nondet-escape", info.display, lineno, col,
                        f"{dotted}() builds its return value by "
                        "unsorted dict/set iteration and "
                        f"{summary.qualname} exports it",
                    ))
    return findings


def _check_blocking(modules, contract):
    findings = []
    index = _function_index(modules)
    for info in modules.values():
        layer = contract.layer_of(info.name)
        if layer not in contract.process_layers:
            continue
        if matches_any(info.resolved, contract.blocking_allow):
            continue
        for summary in info.functions.values():
            if not summary.is_generator:
                continue
            for dotted, lineno, col in summary.blocking:
                findings.append(Finding(
                    "sim-blocking-call", info.display, lineno, col,
                    f"DES process body {summary.qualname} calls "
                    f"{dotted}() — real host I/O inside simulated time",
                ))
            for dotted, lineno, col in summary.calls:
                callee = index.get(dotted)
                if callee is None:
                    continue
                callee_summary, callee_info = callee
                if callee_summary.is_generator or not callee_summary.blocking:
                    continue
                if matches_any(
                    callee_info.resolved, contract.blocking_allow
                ):
                    continue
                blocked = callee_summary.blocking[0][0]
                findings.append(Finding(
                    "sim-blocking-call", info.display, lineno, col,
                    f"DES process body {summary.qualname} calls "
                    f"{dotted}(), which performs real host I/O "
                    f"({blocked}())",
                ))
    return findings


# ---------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------


def archcheck_paths(paths, contract=None, contract_path=None):
    """Run every rule family over the program under ``paths``.

    Returns ``(findings, errors)`` in the shared checker shape. The
    contract comes from ``contract`` (an :class:`ArchContract`), else
    from ``contract_path``, else from :data:`CONTRACT_NAME` in the
    working directory.
    """
    errors = []
    if contract is None:
        contract, contract_errors = load_contract(contract_path)
        if contract is None:
            return [], contract_errors
        errors.extend(contract_errors)

    modules, program_errors = build_program(paths)
    errors.extend(program_errors)

    findings = []
    findings.extend(_check_layers(modules, contract))
    findings.extend(_check_fork_safety(modules, contract))
    findings.extend(_check_nondet_escape(modules, contract))
    findings.extend(_check_blocking(modules, contract))

    kept = []
    by_display = {info.display: info for info in modules.values()}
    pragma_cache = {}
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.col)
    ):
        info = by_display.get(finding.path)
        if info is None:
            kept.append(finding)
            continue
        if finding.path not in pragma_cache:
            allows = _parse_pragmas(
                info.source, info.display, applicable=set(RULES_BY_ID)
            )
            pragma_cache[finding.path] = allows
            errors.extend(allows[2])
        line_allows, file_allows, _ = pragma_cache[finding.path]
        if finding.rule in file_allows:
            continue
        if finding.rule in line_allows.get(finding.line, ()):
            continue
        kept.append(finding)

    # Pragma errors in files without findings must still surface.
    for info in modules.values():
        if info.display in pragma_cache:
            continue
        _, _, pragma_errors = _parse_pragmas(
            info.source, info.display, applicable=set(RULES_BY_ID)
        )
        errors.extend(pragma_errors)

    unique = {}
    for finding in kept:
        unique.setdefault((finding.key(), finding.col), finding)
    return list(unique.values()), errors


def render_findings(findings, show_hints=True):
    """Human-readable report lines for a list of findings."""
    return _render_findings(findings, RULES_BY_ID, show_hints=show_hints)
