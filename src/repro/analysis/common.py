"""Machinery shared by the AST checkers (lint, semcheck, archcheck).

Every checker speaks the same dialect: findings located at
``path:line:col`` with a stable rule id and a fix-it hint, suppression
through ``# repro: allow[rule-id]`` pragmas, an acknowledged-findings
baseline, and the 0/1/2 exit-code contract (clean / findings / the run
itself cannot be trusted). This module holds the dialect so
:mod:`repro.analysis.lint`, :mod:`repro.analysis.semcheck`,
:mod:`repro.analysis.archcheck`, and :mod:`repro.analysis.racecheck`
only contain rules.

Pragmas are validated against the union of every checker's rule ids
(:func:`known_rule_ids`): a pragma naming a rule another checker owns
is silently inapplicable here, but a pragma naming a rule nobody owns
is a hard error — typos must fail the run, not rot.
"""

import ast
import fnmatch
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass


@dataclass(frozen=True)
class RuleInfo:
    """One check rule: stable id, what it catches, and how to fix it."""

    id: str
    summary: str
    hint: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def key(self):
        """Identity used for baseline matching and de-duplication."""
        return (self.path, self.line, self.rule)

    def render(self):
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintError:
    """A configuration problem (bad pragma, stale/unknown baseline).

    Errors are not findings: they mean the check run itself cannot be
    trusted, so the CLI exits 2 instead of 1.
    """

    path: str
    line: int
    message: str

    def render(self):
        return f"{self.path}:{self.line}: error: {self.message}"


_PRAGMA = re.compile(r"#\s*repro:\s*(allow|allow-file)\[([^\]]*)\]")


def known_rule_ids():
    """Every rule id any checker owns (for pragma/typo validation)."""
    from repro.analysis import archcheck, lint, racecheck, semcheck

    return (
        frozenset(lint.RULES_BY_ID)
        | frozenset(semcheck.RULES_BY_ID)
        | frozenset(archcheck.RULES_BY_ID)
        | frozenset(racecheck.RULES_BY_ID)
    )


def rule_owners():
    """Rule id -> owning checker name, across every checker.

    Rule ids are globally unique (a test pins this), so one flat map
    is enough to annotate a pragma with the tool it speaks to.
    """
    from repro.analysis import archcheck, lint, racecheck, semcheck

    owners = {}
    for name, rules in (
        ("lint", lint.RULES_BY_ID),
        ("semcheck", semcheck.RULES_BY_ID),
        ("archcheck", archcheck.RULES_BY_ID),
        ("racecheck", racecheck.RULES_BY_ID),
    ):
        for rule_id in rules:
            owners[rule_id] = name
    return owners


def parse_pragmas(source, path, applicable=None, known=None):
    """Extract suppression pragmas from ``source``.

    Returns ``(line_allows, file_allows, errors)`` where ``line_allows``
    maps a line number to the rule ids allowed on that line, filtered to
    ``applicable`` (the running checker's rules). Rule ids outside
    ``known`` (default: every checker's rules) are
    :class:`LintError`\\ s — a typo'd pragma must fail the run, not
    silently suppress nothing (or worse, keep "working" after the rule
    it named is renamed). Rule ids known to another checker are valid
    but inert here.
    """
    known = known if known is not None else known_rule_ids()
    line_allows = {}
    file_allows = set()
    errors = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    # Only real COMMENT tokens count: a pragma example quoted in a
    # docstring or help string must not suppress anything.
    comments = [
        (token.start[0], token.string)
        for token in tokens
        if token.type == tokenize.COMMENT
    ]
    for lineno, text in comments:
        for match in _PRAGMA.finditer(text):
            kind, raw = match.group(1), match.group(2)
            rules = {part.strip() for part in raw.split(",") if part.strip()}
            if not rules:
                errors.append(
                    LintError(path, lineno, "empty repro pragma rule list")
                )
                continue
            unknown = sorted(rules - set(known))
            if unknown:
                errors.append(
                    LintError(
                        path,
                        lineno,
                        f"unknown rule id(s) in pragma: {', '.join(unknown)} "
                        f"(known: {', '.join(sorted(known))})",
                    )
                )
                rules &= set(known)
            if applicable is not None:
                rules &= set(applicable)
            if kind == "allow":
                line_allows.setdefault(lineno, set()).update(rules)
            else:
                file_allows.update(rules)
    return line_allows, file_allows, errors


class AliasResolver:
    """Resolve call targets to dotted paths through import aliases."""

    def __init__(self, tree, tracked_roots):
        self._tracked = tuple(tracked_roots)
        self._aliases = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._tracked:
                        self._aliases[alias.asname or root] = (
                            alias.name if alias.asname else root
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] in self._tracked:
                    for alias in node.names:
                        self._aliases[alias.asname or alias.name] = (
                            f"{module}.{alias.name}"
                        )

    def dotted(self, node):
        """Dotted path of a ``Name``/``Attribute`` chain, or ``None``."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self._aliases.get(node.id, node.id))
        return ".".join(reversed(parts))


def matches_any(path, patterns):
    """fnmatch ``path`` against any of ``patterns``."""
    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)


def display_path(path):
    """Repo-relative posix path when possible, absolute otherwise."""
    resolved = pathlib.Path(path).resolve()
    try:
        return resolved.relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def iter_python_files(paths):
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files = set()
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


def check_paths(paths, check_source):
    """Run ``check_source(source, display, resolved)`` over every file.

    The shared directory-walking loop behind ``lint_paths`` and
    ``semcheck_paths``; returns combined ``(findings, errors)``.
    """
    findings = []
    errors = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except OSError as exc:
            errors.append(LintError(str(file_path), 0, f"unreadable: {exc}"))
            continue
        file_findings, file_errors = check_source(
            source,
            display_path(file_path),
            file_path.resolve().as_posix(),
        )
        findings.extend(file_findings)
        errors.extend(file_errors)
    return findings, errors


def render_findings(findings, rules_by_id, show_hints=True):
    """Human-readable report lines for a list of findings."""
    lines = []
    for finding in findings:
        lines.append(finding.render())
        if show_hints:
            rule = rules_by_id.get(finding.rule)
            if rule is not None:
                lines.append(f"    fix: {rule.hint}")
    return lines


def findings_to_json(findings):
    """The shared ``--format=json`` payload for every checker."""
    return [
        {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
        }
        for finding in findings
    ]


def inventory_pragmas(paths, known=None):
    """Audit every ``# repro: allow[...]`` suppression under ``paths``.

    Returns ``(records, errors)``: one record per pragma, sorted by
    location, with the rule ids it names — the ``--list-pragmas`` view
    that keeps the suppression debt visible. Unknown rule ids are
    errors, exactly as they are during a check run.
    """
    known = known if known is not None else known_rule_ids()
    records = []
    errors = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except OSError as exc:
            errors.append(LintError(str(file_path), 0, f"unreadable: {exc}"))
            continue
        display = display_path(file_path)
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _PRAGMA.finditer(token.string):
                kind, raw = match.group(1), match.group(2)
                rules = sorted(
                    part.strip() for part in raw.split(",") if part.strip()
                )
                unknown = sorted(set(rules) - set(known))
                if unknown:
                    errors.append(LintError(
                        display, token.start[0],
                        "unknown rule id(s) in pragma: "
                        f"{', '.join(unknown)}",
                    ))
                records.append({
                    "path": display,
                    "line": token.start[0],
                    "kind": kind,
                    "rules": rules,
                })
    records.sort(key=lambda record: (record["path"], record["line"]))
    return records, errors
