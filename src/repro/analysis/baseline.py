"""Machine-readable lint baseline: acknowledged findings, nothing more.

A baseline lets the linter land as a blocking check while a hazard
backlog still exists, without pragma-spraying the tree. This repo's
committed baseline (``.repro-lint-baseline.json``) is **empty** — every
pre-existing hazard was fixed, not suppressed — and the CI ``--check``
mode keeps it honest: stale entries (findings that no longer exist) and
unknown rule ids are hard errors, so the baseline can only shrink.
"""

import json
import pathlib
from dataclasses import dataclass

from repro.analysis.lint import RULES_BY_ID, LintError

#: Default baseline filenames, looked up in the working directory.
BASELINE_NAME = ".repro-lint-baseline.json"
SEMCHECK_BASELINE_NAME = ".repro-semcheck-baseline.json"
ARCHCHECK_BASELINE_NAME = ".repro-archcheck-baseline.json"
RACECHECK_BASELINE_NAME = ".repro-racecheck-baseline.json"

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged finding: (rule, path, line)."""

    rule: str
    path: str
    line: int

    def key(self):
        return (self.path, self.line, self.rule)


def load_baseline(path, known_rules=None):
    """Parse a baseline file; returns ``(entries, errors)``.

    ``known_rules`` is the rule-id set of the checker the baseline
    belongs to (default: the determinism linter's). Unknown rule ids
    are :class:`LintError`\\ s, not skipped entries: a suppression that
    names a rule the checker no longer has (or never had) must fail the
    run instead of rotting silently.
    """
    known_rules = known_rules if known_rules is not None else RULES_BY_ID
    path = pathlib.Path(path)
    errors = []
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return [], [LintError(str(path), 0, "baseline file not found")]
    except (json.JSONDecodeError, OSError) as exc:
        return [], [LintError(str(path), 0, f"unreadable baseline: {exc}")]
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        return [], [
            LintError(
                str(path),
                0,
                f"baseline must be a dict with version={_VERSION}",
            )
        ]
    entries = []
    for index, raw in enumerate(payload.get("entries", [])):
        try:
            entry = BaselineEntry(
                rule=raw["rule"], path=raw["path"], line=int(raw["line"])
            )
        except (TypeError, KeyError, ValueError):
            errors.append(
                LintError(
                    str(path), 0, f"malformed baseline entry #{index}: {raw!r}"
                )
            )
            continue
        if entry.rule not in known_rules:
            errors.append(
                LintError(
                    str(path),
                    0,
                    f"baseline entry #{index} names unknown rule "
                    f"{entry.rule!r} (known: "
                    f"{', '.join(sorted(known_rules))})",
                )
            )
            continue
        entries.append(entry)
    return entries, errors


def write_baseline(path, findings):
    """Write ``findings`` as a baseline file; returns the entry count."""
    entries = sorted({finding.key() for finding in findings})
    payload = {
        "version": _VERSION,
        "entries": [
            {"rule": rule, "path": file_path, "line": line}
            for file_path, line, rule in entries
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)


def apply_baseline(findings, entries):
    """Split findings into (new, stale_entries) against the baseline."""
    acknowledged = {entry.key() for entry in entries}
    new = [f for f in findings if f.key() not in acknowledged]
    present = {finding.key() for finding in findings}
    stale = [entry for entry in entries if entry.key() not in present]
    return new, stale


def prune_baseline(path, findings, known_rules=None):
    """Drop entries no current finding matches; the baseline only shrinks.

    Returns ``(kept, pruned, errors)``. The file is rewritten only when
    something was actually pruned, and never on a load error — a
    baseline that cannot be trusted must not be "repaired" by a tool
    that cannot read it.
    """
    entries, errors = load_baseline(path, known_rules=known_rules)
    if errors:
        return entries, [], errors
    _new, stale = apply_baseline(findings, entries)
    stale_keys = {entry.key() for entry in stale}
    kept = [entry for entry in entries if entry.key() not in stale_keys]
    if stale:
        write_baseline(path, kept)
    return kept, stale, []
