"""Runtime simulation sanitizer: invariant checks and replay digests.

The linter (:mod:`repro.analysis.lint`) catches hazard *patterns*; the
sanitizer catches hazard *behaviour*. With ``REPRO_SANITIZE=1`` in the
environment (or ``--sanitize`` on the CLI, or ``Simulator(...,
sanitize=True)``) every simulator instruments its run loop:

- **monotonic event clock** — a popped event may never be earlier than
  the current simulation time, and nothing may be scheduled in the
  past;
- **tiebreak audit** — consecutive events at equal ``(time, priority)``
  are recorded as tie groups: their relative order is decided purely by
  schedule insertion order, which is exactly where nondeterminism
  (hash-ordered iteration, address-derived keys) sneaks into an
  otherwise-seeded run;
- **no negative durations** — a trace span may never close before it
  opened;
- **resource accounting** — per hardware track (``cpu*``, ``gpu``,
  ``cdsp``, ``npu``) spans must be properly nested, merged busy time
  may not exceed elapsed time, and ``busy + idle == elapsed`` is
  reported per track (:func:`audit_accounting`).

The **dual-run digest** (:func:`dual_run`) replays a whole scenario
twice in-process, hashing every simulator's popped-event stream
``(time, priority, sequence, label)`` with sha256, and — when the
digests differ — pinpoints the first divergent event, flagging whether
it sits inside a tie group (an insertion-order nondeterminism) or not.

Violations raise :class:`SanitizerError` immediately, at the event that
broke the invariant, instead of surfacing later as a mysteriously
different figure.
"""

import hashlib
import re
from contextlib import contextmanager
from dataclasses import dataclass

_EPS = 1e-9

_HARDWARE_TRACK = re.compile(r"^(cpu\d*|gpu\d*|cdsp|npu)$")


class SanitizerError(AssertionError):
    """A simulation invariant was violated."""


@dataclass(frozen=True)
class EventRecord:
    """One popped schedule entry, as hashed into the replay digest."""

    time: float
    priority: int
    sequence: int
    label: str

    def render(self):
        return (
            f"t={self.time!r} prio={self.priority} seq={self.sequence} "
            f"{self.label}"
        )


def _label(event):
    return event.name or type(event).__name__


class EventStream:
    """The ordered record of every event one simulator popped."""

    def __init__(self):
        self.records = []

    def add(self, time, priority, sequence, label):
        self.records.append(EventRecord(time, priority, sequence, label))

    def digest(self):
        """sha256 over the canonical rendering of every record."""
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(
                f"{record.time!r}|{record.priority}|{record.sequence}|"
                f"{record.label}\n".encode("utf-8")
            )
        return digest.hexdigest()


class DigestCollector:
    """Gathers the sanitizers of every simulator created in a scope.

    Simulators register in creation order, which is deterministic for a
    deterministic scenario — so two collectors from two replays of the
    same scenario can be diffed stream by stream.
    """

    def __init__(self):
        self.sanitizers = []

    def register(self, sanitizer):
        self.sanitizers.append(sanitizer)

    def combined_digest(self):
        """sha256 over every registered stream's digest, in order."""
        digest = hashlib.sha256()
        for sanitizer in self.sanitizers:
            digest.update(sanitizer.stream.digest().encode("ascii"))
        return digest.hexdigest()

    def event_count(self):
        return sum(len(s.stream.records) for s in self.sanitizers)

    def tie_count(self):
        return sum(len(s.ties) for s in self.sanitizers)

    def first_divergence(self, other):
        """First event where this replay and ``other`` disagree.

        Returns ``None`` when identical, else a dict with the stream
        index, event index, both records (``None`` past a stream's
        end), and ``"tie": True`` when both runs popped an event at the
        same ``(time, priority)`` — i.e. only the insertion-order
        tiebreak differed, the signature of hash/address
        nondeterminism.
        """
        streams = max(len(self.sanitizers), len(other.sanitizers))
        for stream_index in range(streams):
            if stream_index >= len(self.sanitizers) or stream_index >= len(
                other.sanitizers
            ):
                return {
                    "stream": stream_index,
                    "index": 0,
                    "left": None,
                    "right": None,
                    "tie": False,
                    "reason": "replays created a different number of "
                    "simulators",
                }
            left = self.sanitizers[stream_index].stream.records
            right = other.sanitizers[stream_index].stream.records
            for index in range(max(len(left), len(right))):
                record_a = left[index] if index < len(left) else None
                record_b = right[index] if index < len(right) else None
                if record_a != record_b:
                    tie = (
                        record_a is not None
                        and record_b is not None
                        and record_a.time == record_b.time
                        and record_a.priority == record_b.priority
                    )
                    return {
                        "stream": stream_index,
                        "index": index,
                        "left": record_a,
                        "right": record_b,
                        "tie": tie,
                    }
        return None


_ACTIVE = {"collector": None}


@contextmanager
def collecting():
    """Force-sanitize every simulator created in the scope and collect.

    Yields the :class:`DigestCollector` the scope's sanitizers register
    with. Nested scopes restore the previous collector on exit.
    """
    from repro.sim import engine

    collector = DigestCollector()
    previous = _ACTIVE["collector"]
    _ACTIVE["collector"] = collector
    previous_default = engine.set_sanitize_default(True)
    try:
        yield collector
    finally:
        _ACTIVE["collector"] = previous
        engine.set_sanitize_default(previous_default)


class Sanitizer:
    """Per-simulator invariant checker and event-stream recorder.

    Attached by the engine when sanitizing is enabled; the engine calls
    :meth:`on_schedule` / :meth:`on_pop`, the trace recorder calls
    :meth:`on_span_close`.
    """

    def __init__(self, sim):
        self.sim = sim
        self.stream = EventStream()
        #: Groups of consecutive events popped at equal (time, priority)
        #: — their order is pure insertion order.
        self.ties = []
        self._tie_open = False
        self._last = None
        collector = _ACTIVE["collector"]
        if collector is not None:
            collector.register(self)

    # -- engine hooks --------------------------------------------------

    def on_schedule(self, time, priority, sequence, event):
        if time < self.sim.now - _EPS:
            raise SanitizerError(
                f"scheduled into the past: {_label(event)!r} at t={time} "
                f"with now={self.sim.now}"
            )

    def on_pop(self, time, priority, sequence, event):
        if time < self.sim.now - _EPS:
            raise SanitizerError(
                f"event clock went backwards: popped t={time} with "
                f"now={self.sim.now}"
            )
        record = EventRecord(time, priority, sequence, _label(event))
        last = self._last
        if (
            last is not None
            and last.time == record.time
            and last.priority == record.priority
        ):
            if self._tie_open:
                self.ties[-1].append(record)
            else:
                self.ties.append([last, record])
                self._tie_open = True
        else:
            self._tie_open = False
        self._last = record
        self.stream.records.append(record)

    # -- trace hooks ---------------------------------------------------

    def on_span_close(self, span):
        if span.end < span.start - _EPS:
            raise SanitizerError(
                f"negative span duration on {span.track!r}: "
                f"{span.label!r} [{span.start}, {span.end})"
            )

    # -- end-of-run audit ----------------------------------------------

    def audit(self):
        """Run end-of-run invariants; returns an accounting report.

        Raises :class:`SanitizerError` on partially-overlapping spans
        or busy time exceeding elapsed time on a hardware track.
        """
        report = {
            "events": len(self.stream.records),
            "ties": len(self.ties),
            "digest": self.stream.digest(),
            "tracks": {},
        }
        if self.sim.trace is not None:
            report["tracks"] = audit_accounting(self.sim.trace, self.sim.now)
        return report


def audit_accounting(trace, elapsed):
    """Per-hardware-track conservation: busy + idle == elapsed.

    For every hardware track (``cpu*``, ``gpu*``, ``cdsp``, ``npu``)
    the closed spans must be properly nested (Chrome complete events
    derive nesting from timestamps, and a serial unit cannot half-
    overlap itself), merged busy time may not exceed the elapsed
    simulation time, and no span may have negative duration. Returns
    ``{track: {"busy_us", "idle_us", "elapsed_us"}}``.
    """
    report = {}
    for track in sorted({span.track for span in trace.spans}):
        if not _HARDWARE_TRACK.match(track):
            continue
        spans = sorted(
            (
                (span.start, span.end, span.label)
                for span in trace.spans
                if span.track == track and span.closed
            ),
            key=lambda entry: (entry[0], -entry[1]),
        )
        busy = 0.0
        cursor = 0.0
        stack = []
        for start, end, label in spans:
            if end < start - _EPS:
                raise SanitizerError(
                    f"negative span duration on {track!r}: {label!r} "
                    f"[{start}, {end})"
                )
            while stack and stack[-1] <= start + _EPS:
                stack.pop()
            if stack and end > stack[-1] + _EPS:
                raise SanitizerError(
                    f"partially overlapping spans on {track!r}: {label!r} "
                    f"[{start}, {end}) crosses an enclosing span ending "
                    f"at {stack[-1]}"
                )
            stack.append(end)
            clipped_end = min(end, elapsed)
            if clipped_end > cursor:
                busy += clipped_end - max(start, cursor)
                cursor = clipped_end
        idle = elapsed - busy
        if idle < -_EPS:
            raise SanitizerError(
                f"busy time exceeds elapsed on {track!r}: busy={busy} "
                f"elapsed={elapsed}"
            )
        report[track] = {
            "busy_us": busy,
            "idle_us": max(idle, 0.0),
            "elapsed_us": elapsed,
        }
    return report


@dataclass(frozen=True)
class DualRunReport:
    """The outcome of replaying one scenario twice in-process."""

    digest_a: str
    digest_b: str
    events: int
    ties: int
    divergence: dict

    @property
    def identical(self):
        return self.divergence is None and self.digest_a == self.digest_b

    def render(self):
        lines = [
            f"run A digest: {self.digest_a}",
            f"run B digest: {self.digest_b}",
            f"events: {self.events}  tie groups: {self.ties}",
        ]
        if self.identical:
            lines.append("replay: IDENTICAL")
        else:
            lines.append("replay: DIVERGED")
            divergence = self.divergence or {}
            left = divergence.get("left")
            right = divergence.get("right")
            lines.append(
                f"first divergence: simulator #{divergence.get('stream')} "
                f"event #{divergence.get('index')}"
            )
            lines.append(
                f"  run A: {left.render() if left else '(stream ended)'}"
            )
            lines.append(
                f"  run B: {right.render() if right else '(stream ended)'}"
            )
            if divergence.get("tie"):
                lines.append(
                    "  equal (time, priority): order differs only by "
                    "schedule insertion — an unordered-iteration or "
                    "address-derived tiebreak"
                )
            if divergence.get("reason"):
                lines.append(f"  {divergence['reason']}")
        return "\n".join(lines)


def dual_run(scenario):
    """Replay ``scenario()`` twice with sanitizers on; diff the digests.

    Every simulator created by the callable is instrumented; at the end
    of each replay its invariants are audited. Returns a
    :class:`DualRunReport` whose ``divergence`` names the first event
    where the two replays disagree (``None`` when bit-identical).
    """
    with collecting() as first:
        scenario()
    for sanitizer in first.sanitizers:
        sanitizer.audit()
    with collecting() as second:
        scenario()
    for sanitizer in second.sanitizers:
        sanitizer.audit()
    return DualRunReport(
        digest_a=first.combined_digest(),
        digest_b=second.combined_digest(),
        events=first.event_count(),
        ties=first.tie_count(),
        divergence=first.first_divergence(second),
    )
