"""Dual-run replay digests: the driver above the runtime sanitizer.

The linter (:mod:`repro.analysis.lint`) catches hazard *patterns*; the
runtime sanitizer (:mod:`repro.sim.sanitizer` — invariant hooks wired
into the engine's run loop) catches hazard *behaviour*. This module is
the analysis-side driver over those hooks: it force-sanitizes a scope,
collects every simulator's popped-event stream, and diffs two replays.

The **dual-run digest** (:func:`dual_run`) replays a whole scenario
twice in-process, hashing every simulator's popped-event stream
``(time, priority, sequence, label)`` with sha256, and — when the
digests differ — pinpoints the first divergent event, flagging whether
it sits inside a tie group (an insertion-order nondeterminism) or not.

The runtime classes (:class:`Sanitizer`, :class:`EventStream`,
:class:`SanitizerError`, :func:`audit_accounting`) are re-exported here
for backwards compatibility; they live in :mod:`repro.sim.sanitizer`.
"""

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass

from repro.sim import sanitizer as _runtime
from repro.sim.sanitizer import (  # noqa: F401 - compat re-exports
    EventRecord,
    EventStream,
    Sanitizer,
    SanitizerError,
    audit_accounting,
)


class DigestCollector:
    """Gathers the sanitizers of every simulator created in a scope.

    Simulators register in creation order, which is deterministic for a
    deterministic scenario — so two collectors from two replays of the
    same scenario can be diffed stream by stream.
    """

    def __init__(self):
        self.sanitizers = []

    def register(self, sanitizer):
        self.sanitizers.append(sanitizer)

    def combined_digest(self):
        """sha256 over every registered stream's digest, in order."""
        digest = hashlib.sha256()
        for sanitizer in self.sanitizers:
            digest.update(sanitizer.stream.digest().encode("ascii"))
        return digest.hexdigest()

    def event_count(self):
        return sum(len(s.stream.records) for s in self.sanitizers)

    def tie_count(self):
        return sum(len(s.ties) for s in self.sanitizers)

    def first_divergence(self, other):
        """First event where this replay and ``other`` disagree.

        Returns ``None`` when identical, else a dict with the stream
        index, event index, both records (``None`` past a stream's
        end), and ``"tie": True`` when both runs popped an event at the
        same ``(time, priority)`` — i.e. only the insertion-order
        tiebreak differed, the signature of hash/address
        nondeterminism.
        """
        streams = max(len(self.sanitizers), len(other.sanitizers))
        for stream_index in range(streams):
            if stream_index >= len(self.sanitizers) or stream_index >= len(
                other.sanitizers
            ):
                return {
                    "stream": stream_index,
                    "index": 0,
                    "left": None,
                    "right": None,
                    "tie": False,
                    "reason": "replays created a different number of "
                    "simulators",
                }
            left = self.sanitizers[stream_index].stream.records
            right = other.sanitizers[stream_index].stream.records
            for index in range(max(len(left), len(right))):
                record_a = left[index] if index < len(left) else None
                record_b = right[index] if index < len(right) else None
                if record_a != record_b:
                    tie = (
                        record_a is not None
                        and record_b is not None
                        and record_a.time == record_b.time
                        and record_a.priority == record_b.priority
                    )
                    return {
                        "stream": stream_index,
                        "index": index,
                        "left": record_a,
                        "right": record_b,
                        "tie": tie,
                    }
        return None


@contextmanager
def collecting():
    """Force-sanitize every simulator created in the scope and collect.

    Yields the :class:`DigestCollector` the scope's sanitizers register
    with. Nested scopes restore the previous collector on exit.
    """
    from repro.sim import set_sanitize_default

    collector = DigestCollector()
    previous = _runtime._ACTIVE["collector"]
    _runtime._ACTIVE["collector"] = collector
    previous_default = set_sanitize_default(True)
    try:
        yield collector
    finally:
        _runtime._ACTIVE["collector"] = previous
        set_sanitize_default(previous_default)


@dataclass(frozen=True)
class DualRunReport:
    """The outcome of replaying one scenario twice in-process."""

    digest_a: str
    digest_b: str
    events: int
    ties: int
    divergence: dict

    @property
    def identical(self):
        return self.divergence is None and self.digest_a == self.digest_b

    def render(self):
        lines = [
            f"run A digest: {self.digest_a}",
            f"run B digest: {self.digest_b}",
            f"events: {self.events}  tie groups: {self.ties}",
        ]
        if self.identical:
            lines.append("replay: IDENTICAL")
        else:
            lines.append("replay: DIVERGED")
            divergence = self.divergence or {}
            left = divergence.get("left")
            right = divergence.get("right")
            lines.append(
                f"first divergence: simulator #{divergence.get('stream')} "
                f"event #{divergence.get('index')}"
            )
            lines.append(
                f"  run A: {left.render() if left else '(stream ended)'}"
            )
            lines.append(
                f"  run B: {right.render() if right else '(stream ended)'}"
            )
            if divergence.get("tie"):
                lines.append(
                    "  equal (time, priority): order differs only by "
                    "schedule insertion — an unordered-iteration or "
                    "address-derived tiebreak"
                )
            if divergence.get("reason"):
                lines.append(f"  {divergence['reason']}")
        return "\n".join(lines)

    def to_json(self):
        """Machine-readable payload (the ``--format=json`` body)."""
        divergence = None
        if self.divergence is not None:
            divergence = dict(self.divergence)
            for side in ("left", "right"):
                record = divergence.get(side)
                if record is not None:
                    divergence[side] = {
                        "time": record.time,
                        "priority": record.priority,
                        "sequence": record.sequence,
                        "label": record.label,
                    }
        return {
            "identical": self.identical,
            "digest_a": self.digest_a,
            "digest_b": self.digest_b,
            "events": self.events,
            "ties": self.ties,
            "divergence": divergence,
        }


def dual_run(scenario):
    """Replay ``scenario()`` twice with sanitizers on; diff the digests.

    Every simulator created by the callable is instrumented; at the end
    of each replay its invariants are audited. Returns a
    :class:`DualRunReport` whose ``divergence`` names the first event
    where the two replays disagree (``None`` when bit-identical).
    """
    with collecting() as first:
        scenario()
    for sanitizer in first.sanitizers:
        sanitizer.audit()
    with collecting() as second:
        scenario()
    for sanitizer in second.sanitizers:
        sanitizer.audit()
    return DualRunReport(
        digest_a=first.combined_digest(),
        digest_b=second.combined_digest(),
        events=first.event_count(),
        ties=first.tie_count(),
        divergence=first.first_divergence(second),
    )
