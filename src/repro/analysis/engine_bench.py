"""Engine perf trajectory: fingerprints, replay digests, throughput.

The paper's discipline — measure overhead before claiming a win —
applied to the simulator itself. A perf PR must be *observably free*:
faster wall clock, identical simulation. This module provides the two
halves of that contract:

* **Fingerprints** (:func:`experiment_fingerprint`,
  :func:`fleet_replay_digest`, :func:`engine_fingerprints`) — sha256
  content hashes of figure-experiment outputs and of the sanitizer's
  popped-event replay stream. The committed golden copy
  (``benchmarks/results/ENGINE_golden_digests.json``) was generated on
  the *pre-optimization* engine; ``benchmarks/test_engine_throughput.py``
  re-derives the fingerprints on every run and fails on any drift, so an
  "optimization" that changes a single popped event or output byte
  cannot land silently.
* **Throughput** (:func:`measure_fleet_throughput`,
  :func:`measure_session_events`, :func:`measure_experiment_wall`) —
  sessions/sec, events/sec, and per-experiment p50 wall time, the
  numbers ``BENCH_engine_throughput.json`` tracks across PRs.

See ``docs/performance.md`` for the workflow.
"""

import hashlib
import json
import time

#: The figure experiments fingerprinted by the engine guard, with the
#: exact kwargs the guard runs them under. Small enough to run in a
#: smoke job, large enough to exercise the CPU path, both delegates,
#: NNAPI partitioning, interference, DVFS, and the fleet expander.
FINGERPRINT_EXPERIMENTS = (
    ("fig4", {"runs": 4}),
    ("fig7", {}),
    ("fleet_percentiles", {"sessions": 12, "runs": 4, "seed": 0}),
)

#: Workload for the replay-digest half of the guard: a seeded fleet
#: run replayed twice under the sanitizer.
REPLAY_WORKLOAD = {"sessions": 6, "runs": 3, "seed": 0}


def canonical_digest(payload):
    """sha256 of the canonical (sorted-keys) JSON rendering."""
    encoded = json.dumps(
        payload, sort_keys=True, default=repr
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def experiment_fingerprint(experiment_id, **kwargs):
    """Content hash of one experiment's full tabular output."""
    from repro.experiments import run_experiment

    result = run_experiment(experiment_id, **kwargs)
    return canonical_digest({
        "experiment_id": result.experiment_id,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "series": result.series,
        "notes": result.notes,
    })


def fleet_replay_digest(sessions=None, runs=None, seed=None):
    """Dual-run sanitizer digest of a seeded single-process fleet run.

    Replays the fleet scenario twice with every simulator instrumented;
    raises if the two replays diverge (a determinism regression), else
    returns the combined popped-event-stream digest that the golden
    file pins.
    """
    from repro.analysis.sanitize import dual_run
    from repro.fleet import run_fleet

    workload = dict(REPLAY_WORKLOAD)
    if sessions is not None:
        workload["sessions"] = sessions
    if runs is not None:
        workload["runs"] = runs
    if seed is not None:
        workload["seed"] = seed

    report = dual_run(lambda: run_fleet(workers=1, **workload))
    if not report.identical:
        raise AssertionError(
            "fleet replay diverged between two in-process runs:\n"
            + report.render()
        )
    return {
        "digest": report.digest_a,
        "events": report.events,
        "workload": workload,
    }


def engine_fingerprints():
    """Every fingerprint the golden file pins, freshly computed."""
    replay = fleet_replay_digest()
    return {
        "experiments": {
            experiment_id: experiment_fingerprint(experiment_id, **kwargs)
            for experiment_id, kwargs in FINGERPRINT_EXPERIMENTS
        },
        "replay": {
            "digest": replay["digest"],
            "events": replay["events"],
            "workload": replay["workload"],
        },
    }


# -- throughput ---------------------------------------------------------


def measure_fleet_throughput(sessions=64, runs=6, seed=0, repeats=3):
    """Single-process fleet sessions/sec on the fleet_percentiles load.

    Runs the same deterministic workload ``repeats`` times (no cache,
    one process) and reports the *best* wall time — the least-noisy
    estimator for a fixed workload on a shared machine.
    """
    from repro.fleet import run_fleet

    walls = []
    for _ in range(repeats):
        start = time.perf_counter()
        fleet = run_fleet(sessions=sessions, workers=1, seed=seed, runs=runs)
        walls.append(time.perf_counter() - start)
    best = min(walls)
    return {
        "sessions": len(fleet),
        "runs_per_session": runs,
        "wall_s": best,
        "wall_s_all": walls,
        "sessions_per_sec": len(fleet) / best,
    }


def measure_session_events(model_key="mobilenet_v1", dtype="int8",
                           context="app", target="hexagon", runs=6, seed=0):
    """Events/sec of one representative end-to-end session.

    Returns the popped-event count (a pure function of the workload —
    identical before and after any observably-free optimization) and
    the wall-clock rate at which the engine retired them.
    """
    from repro.apps import PipelineConfig, run_pipeline_with_rig

    config = PipelineConfig(
        model_key=model_key, dtype=dtype, context=context, target=target,
        runs=runs, seed=seed,
    )
    start = time.perf_counter()
    _records, sim, _soc, _kernel, _packaging = run_pipeline_with_rig(config)
    wall = time.perf_counter() - start
    events = sim.events_processed
    return {
        "model": model_key,
        "dtype": dtype,
        "context": context,
        "target": target,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall else 0.0,
    }


def measure_experiment_wall(experiment_id, repeats=3, **kwargs):
    """Median (p50) wall seconds of one figure experiment."""
    from repro.experiments import run_experiment

    walls = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_experiment(experiment_id, **kwargs)
        walls.append(time.perf_counter() - start)
    walls.sort()
    return {
        "experiment_id": experiment_id,
        "p50_wall_s": walls[len(walls) // 2],
        "best_wall_s": walls[0],
    }
