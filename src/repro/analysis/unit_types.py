"""Unit typing for the simulation DSL's name-suffix convention.

The engine clock counts **microseconds**; the paper reports
milliseconds; energy meters count microjoules; clocks are megahertz.
The tree encodes the unit of nearly every quantity in its name —
``dsp_queue_us``, ``total_ms``, ``per_char_ns``, ``max_freq_mhz``,
``total_uj``, ``ambient_celsius`` — which makes units *statically
inferable*: a suffix is a type annotation the checker can read.

This module is the type system behind the semcheck units pass
(:mod:`repro.analysis.semcheck`): the suffix table, the dimension each
unit belongs to, the conversion helpers of :mod:`repro.sim.units` with
their argument/return units, and the externally-declared signatures
(``Simulator.timeout(delay)`` is microseconds, per its docstring, and
is checked as such).
"""

from dataclasses import dataclass

#: Dimension names (two units clash only within one dimension; a
#: microsecond divided by a microjoule is a legitimate derived rate).
TIME = "time"
FREQUENCY = "frequency"
ENERGY = "energy"
TEMPERATURE = "temperature"


@dataclass(frozen=True)
class Unit:
    """One inferable unit: suffix token, dimension, display name."""

    id: str
    dimension: str
    description: str


UNITS = (
    Unit("us", TIME, "microseconds (the simulator clock)"),
    Unit("ms", TIME, "milliseconds (the paper's reporting unit)"),
    Unit("ns", TIME, "nanoseconds (per-element cost rates)"),
    Unit("s", TIME, "seconds"),
    Unit("mhz", FREQUENCY, "megahertz"),
    Unit("ghz", FREQUENCY, "gigahertz"),
    Unit("uj", ENERGY, "microjoules (the energy-meter unit)"),
    Unit("mj", ENERGY, "millijoules"),
    Unit("celsius", TEMPERATURE, "degrees Celsius"),
)

UNITS_BY_ID = {unit.id: unit for unit in UNITS}

#: Suffix tokens that actually mark units on names. ``_s`` is excluded:
#: it is too common as a non-unit suffix to infer from safely.
_SUFFIX_UNITS = ("us", "ms", "ns", "mhz", "ghz", "uj", "mj", "celsius")


def suffix_unit(name):
    """Unit id inferred from ``name``'s suffix, or ``None``.

    ``dsp_queue_us`` -> ``"us"``; a bare ``ns`` or ``us`` counts too
    (idiomatic for tight per-element loops); ``bonus`` does not —
    only an underscore-delimited trailing token infers.
    """
    if name in _SUFFIX_UNITS:
        return name
    for token in _SUFFIX_UNITS:
        if name.endswith("_" + token):
            return token
    return None


def same_dimension(unit_a, unit_b):
    """Whether two unit ids share a dimension (so mixing them clashes)."""
    info_a, info_b = UNITS_BY_ID.get(unit_a), UNITS_BY_ID.get(unit_b)
    return (
        info_a is not None
        and info_b is not None
        and info_a.dimension == info_b.dimension
    )


#: ``repro.sim.units`` converters: callable name -> (argument unit,
#: return unit). ``None`` argument unit means "any number" (the
#: dimensionless scale constants are not callables and not listed).
CONVERTER_SIGNATURES = {
    "us": ("us", "us"),
    "ms": ("ms", "us"),
    "ns": ("ns", "us"),
    "seconds": ("s", "us"),
    "to_us": ("us", "us"),
    "to_ms": ("us", "ms"),
    "to_ns": ("us", "ns"),
    "to_seconds": ("us", "s"),
    "to_mj": ("uj", "mj"),
    "fps_from_ms": ("ms", None),
    # Dimension-changing identities: watts x us -> uJ, and G-per-second
    # rates -> per-us rates. Their first arguments carry no unit suffix.
    "uj_from_w_us": (None, "uj"),
    "per_us_rate": (None, None),
}

#: Module paths a converter call may be rooted at.
UNITS_MODULE_PATHS = ("units", "repro.sim.units", "sim.units")


def converter_signature(dotted):
    """``(argument_unit, return_unit)`` for a units-converter call path.

    Accepts ``units.to_ms`` / ``repro.sim.units.to_ms`` style dotted
    paths (via any import alias the resolver expanded) and the bare
    name when it was imported ``from repro.sim.units import to_ms``.
    Returns ``None`` for anything that is not a converter.
    """
    if dotted is None:
        return None
    head, _, leaf = dotted.rpartition(".")
    if leaf not in CONVERTER_SIGNATURES:
        return None
    if head == "" or head in UNITS_MODULE_PATHS:
        return CONVERTER_SIGNATURES[leaf]
    return None


#: Externally-declared call signatures the units pass enforces even
#: across module boundaries: callable leaf name -> tuple of
#: (position, parameter name, unit id) for each checked parameter.
#: These are API contracts stated in docstrings ("``delay``
#: microseconds"), so a unit-suffixed argument of a different unit is
#: a bug even though the parameter name carries no suffix.
DECLARED_SIGNATURES = {
    # Simulator.timeout(delay, ...) / Timeout(sim, delay, ...)
    "timeout": ((0, "delay", "us"),),
    # Simulator.schedule_callback(delay, callback, ...)
    "schedule_callback": ((0, "delay", "us"),),
    # repro.android.thread scheduling requests.
    "Sleep": ((0, "duration_us", "us"),),
    "Work": ((0, "ref_us", "us"),),
}


def declared_parameters(call_name):
    """Checked parameters for a declared-signature callable, or ``()``."""
    return DECLARED_SIGNATURES.get(call_name, ())


#: Power-of-1000 scale factors whose bare use in arithmetic is a
#: "magic conversion": the number 1000 converts between adjacent time
#: units (and uJ -> mJ) and should be spelled as a
#: :mod:`repro.sim.units` helper so the direction is readable.
MAGIC_SCALE_VALUES = (1000, 1000.0)


def is_magic_scale(value):
    """Whether a numeric literal is a bare power-of-1000 unit scale."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value in MAGIC_SCALE_VALUES
    )
