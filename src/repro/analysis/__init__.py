"""Correctness tooling: determinism lint and the simulation sanitizer.

Two layers guard the property every regenerated figure depends on —
that a seeded simulation replays bit-identically:

- :mod:`repro.analysis.lint` — an AST linter (``python -m repro lint``)
  for the hazard patterns that have actually broken replay here
  (wall-clock reads, global RNGs, ``id()``-derived keys, process-global
  counters, unordered iteration feeding artifacts);
- :mod:`repro.analysis.semcheck` — an AST *semantic* checker
  (``python -m repro semcheck``) for hazards that replay perfectly and
  compute the wrong number: mixed time/energy units (inferred from
  ``_us``/``_ms``/``_ns`` name suffixes, see
  :mod:`repro.analysis.unit_types`) and broken resource
  request/release protocol across yields and exception edges;
- :mod:`repro.analysis.sanitize` — a runtime sanitizer
  (``REPRO_SANITIZE=1`` / ``--sanitize``) that checks engine invariants
  while a simulation runs, plus a dual-run sha256 digest mode that
  replays a scenario twice and pinpoints the first divergent event.

``docs/determinism.md`` catalogues the hazard classes and the
suppression workflow.
"""

from repro.analysis.baseline import (
    BASELINE_NAME,
    SEMCHECK_BASELINE_NAME,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint import (
    DEFAULT_CONFIG,
    RULES,
    RULES_BY_ID,
    Finding,
    LintConfig,
    LintError,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.analysis.semcheck import (
    DEFAULT_CONFIG as SEMCHECK_DEFAULT_CONFIG,
)
from repro.analysis.semcheck import (
    RULES as SEMCHECK_RULES,
)
from repro.analysis.semcheck import (
    RULES_BY_ID as SEMCHECK_RULES_BY_ID,
)
from repro.analysis.semcheck import (
    SemCheckConfig,
    semcheck_paths,
    semcheck_source,
)
from repro.analysis.sanitize import (
    DigestCollector,
    DualRunReport,
    EventRecord,
    EventStream,
    Sanitizer,
    SanitizerError,
    audit_accounting,
    collecting,
    dual_run,
)

__all__ = [
    "BASELINE_NAME",
    "SEMCHECK_BASELINE_NAME",
    "SEMCHECK_DEFAULT_CONFIG",
    "SEMCHECK_RULES",
    "SEMCHECK_RULES_BY_ID",
    "SemCheckConfig",
    "semcheck_paths",
    "semcheck_source",
    "BaselineEntry",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "DEFAULT_CONFIG",
    "RULES",
    "RULES_BY_ID",
    "Finding",
    "LintConfig",
    "LintError",
    "lint_paths",
    "lint_source",
    "render_findings",
    "DigestCollector",
    "DualRunReport",
    "EventRecord",
    "EventStream",
    "Sanitizer",
    "SanitizerError",
    "audit_accounting",
    "collecting",
    "dual_run",
]
