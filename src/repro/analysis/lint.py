"""Determinism lint: AST rules for the hazards that break replay.

Every figure the reproduction regenerates rests on one property: a
seeded simulation replays bit-identically. The hazards that broke that
property in the past (``id(self)``-derived pids, the process-global
``SimThread._ids`` iterator) were each found *after* traces came out
different across reruns and fixed by hand. This linter turns the whole
hazard class into a blocking check instead of a code-review hope.

Rules (see :data:`RULES` and ``docs/determinism.md``)
-----------------------------------------------------

========================  =============================================
``wall-clock``            host clock reads outside allowlisted
                          calibration modules
``global-random``         the process-global ``random`` module, unseeded
                          ``random.Random()`` / ``numpy`` legacy global
                          generators
``id-as-key``             ``id(...)`` values flowing into keys, sort
                          orders, or trace fields
``module-counter``        ``itertools.count`` / class-level mutable
                          counters shared across simulations
``set-iteration``         iterating a set (hash order) without
                          ``sorted``
``unsorted-items``        ``dict.items()`` iteration in artifact-export
                          modules without ``sorted``
``bare-except``           handlers that swallow everything, including
                          injected faults
``unpaired-span``         a ``begin()`` span handle that is discarded
                          and therefore can never be ended
========================  =============================================

Suppression is explicit: a line pragma ``# repro: allow[rule-id]``, a
file pragma ``# repro: allow-file[rule-id]``, or a machine-readable
baseline entry (:mod:`repro.analysis.baseline`). Unknown rule ids in
either are hard errors so suppressions cannot rot.
"""

import ast
import re
from dataclasses import dataclass

from repro.analysis.common import (
    AliasResolver,
    Finding,
    LintError,
    RuleInfo,
    check_paths,
    matches_any,
)
from repro.analysis.common import parse_pragmas as _parse_pragmas
from repro.analysis.common import render_findings as _render_findings


RULES = (
    RuleInfo(
        "wall-clock",
        "wall-clock read in simulation code",
        "derive time from Simulator.now (simulated microseconds); host "
        "clocks differ run to run. Calibration harnesses belong in a "
        "module allowlisted via LintConfig.wallclock_allow.",
    ),
    RuleInfo(
        "global-random",
        "process-global or unseeded random source",
        "draw from the simulation's named streams (repro.sim.rng."
        "RngStreams) or construct a generator from an explicit seed.",
    ),
    RuleInfo(
        "id-as-key",
        "id(...) used as an identity token",
        "CPython object addresses change across runs; allocate "
        "deterministic ids (Kernel.allocate_pid/allocate_tid, "
        "Simulator.next_id) or compare with `is`.",
    ),
    RuleInfo(
        "module-counter",
        "interpreter-global mutable counter",
        "itertools.count and class-level _ids survive across "
        "simulations in one process; allocate from the owning "
        "Simulator/Kernel (Simulator.next_id) instead.",
    ),
    RuleInfo(
        "set-iteration",
        "iteration over a set",
        "set order is hash-seed and address dependent; wrap the set in "
        "sorted(...) before iterating or feeding it to list()/tuple().",
    ),
    RuleInfo(
        "unsorted-items",
        "unsorted dict.items() in an artifact-export module",
        "wrap in sorted(...) (use key=... to preserve a deliberate "
        "display order) so exported artifacts and aggregate math do "
        "not depend on insertion order.",
    ),
    RuleInfo(
        "bare-except",
        "handler swallows every exception",
        "catch the specific exceptions you can recover from; a blanket "
        "handler hides injected faults and sanitizer violations.",
    ),
    RuleInfo(
        "unpaired-span",
        "begin() span handle discarded",
        "keep the handle and call end(span), or use the probes.span "
        "context manager; a discarded handle leaves the span open "
        "forever.",
    ),
)

RULES_BY_ID = {rule.id: rule for rule in RULES}


@dataclass(frozen=True)
class LintConfig:
    """Where rules apply.

    ``wallclock_allow`` are fnmatch globs (matched against the resolved
    posix path) naming modules allowed to read host clocks — the
    calibration harness that *measures* the host by design.
    ``export_modules`` are the modules whose output reaches artifacts
    (traces, tables, JSON, fleet aggregates); the ``unsorted-items``
    rule fires only there.
    """

    wallclock_allow: tuple = (
        "*/processing/calibrate.py",
        # The engine perf harness measures the host by design:
        # sessions/sec and events/sec are wall-clock metrics.
        "*/analysis/engine_bench.py",
        # The fleet supervisor lives on the host side of the process
        # boundary: worker deadlines and crash backoff are wall-clock
        # because the simulated clock cannot observe a wedged worker.
        "*/fleet/supervisor.py",
    )
    export_modules: tuple = (
        "*/observability/*",
        "*/experiments/*",
        "*/core/export.py",
        "*/core/report.py",
        "*/fleet/aggregate.py",
    )


DEFAULT_CONFIG = LintConfig()

#: Dotted call targets that read host clocks.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random module-level functions backed by the legacy global state.
_NUMPY_LEGACY = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Modules whose imports the analyzer resolves through aliases.
_TRACKED_ROOTS = ("time", "datetime", "random", "itertools", "numpy")

_COUNTER_NAME = re.compile(r"^_?(ids?|counters?|count|seq|sequence|next_\w+)$")

def parse_pragmas(source, path):
    """Extract this checker's suppression pragmas from ``source``.

    Thin wrapper over :func:`repro.analysis.common.parse_pragmas`,
    scoped so only lint rules apply here while semcheck rule ids remain
    valid (inert) in pragmas and vice versa.
    """
    return _parse_pragmas(source, path, applicable=set(RULES_BY_ID))


class _Analyzer(ast.NodeVisitor):
    """Single-pass rule engine over one module's AST."""

    def __init__(self, path, config, resolved_path):
        self.path = path
        self.config = config
        self.findings = []
        self._resolver = None
        self._parents = {}
        self._wallclock_allowed = matches_any(
            resolved_path, config.wallclock_allow
        )
        self._is_export_module = matches_any(
            resolved_path, config.export_modules
        )

    # -- plumbing ------------------------------------------------------

    def run(self, tree):
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self._resolver = AliasResolver(tree, _TRACKED_ROOTS)
        self.visit(tree)
        unique = {}
        for finding in self.findings:
            unique.setdefault(finding.key(), finding)
        return [unique[key] for key in sorted(unique)]

    def _dotted(self, node):
        """Resolve a call target to a dotted path through import aliases."""
        return self._resolver.dotted(node)

    def _flag(self, rule, node, message):
        self.findings.append(
            Finding(rule, self.path, node.lineno, node.col_offset, message)
        )

    def _has_sorted_ancestor(self, node):
        current = self._parents.get(node)
        while current is not None:
            if (
                isinstance(current, ast.Call)
                and self._dotted(current.func) == "sorted"
            ):
                return True
            current = self._parents.get(current)
        return False

    # -- call-shaped rules ---------------------------------------------

    def visit_Call(self, node):
        dotted = self._dotted(node.func) or ""
        self._check_wallclock(node, dotted)
        self._check_global_random(node, dotted)
        self._check_id(node, dotted)
        self._check_count(node, dotted)
        self._check_unsorted_items(node)
        self._check_set_materialized(node, dotted)
        self.generic_visit(node)

    def _check_wallclock(self, node, dotted):
        if dotted in _WALLCLOCK_CALLS and not self._wallclock_allowed:
            self._flag(
                "wall-clock",
                node,
                f"{dotted}() reads the host clock; simulation time must "
                "come from the engine",
            )

    def _check_global_random(self, node, dotted):
        if dotted.startswith("random."):
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    self._flag(
                        "global-random",
                        node,
                        "random.Random() without a seed draws from OS "
                        "entropy",
                    )
            elif dotted == "random.SystemRandom" or "." in dotted:
                self._flag(
                    "global-random",
                    node,
                    f"{dotted}() uses process-global random state",
                )
        elif dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf in _NUMPY_LEGACY:
                self._flag(
                    "global-random",
                    node,
                    f"{dotted}() uses numpy's legacy global generator",
                )
            elif leaf in ("default_rng", "RandomState") and not node.args \
                    and not node.keywords:
                self._flag(
                    "global-random",
                    node,
                    f"{dotted}() without a seed draws from OS entropy",
                )

    def _check_id(self, node, dotted):
        if dotted == "id" and len(node.args) == 1:
            self._flag(
                "id-as-key",
                node,
                "id(...) is an interpreter address, different every run",
            )

    def _check_count(self, node, dotted):
        if dotted == "itertools.count":
            self._flag(
                "module-counter",
                node,
                "itertools.count() state is shared by every simulation "
                "in the process",
            )

    def _check_unsorted_items(self, node):
        if (
            self._is_export_module
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "items"
            and not node.args
            and not node.keywords
            and not self._has_sorted_ancestor(node)
        ):
            self._flag(
                "unsorted-items",
                node,
                ".items() order reaches an exported artifact without "
                "sorted(...)",
            )

    def _check_set_materialized(self, node, dotted):
        if dotted in ("list", "tuple") and len(node.args) == 1 \
                and self._is_set_expr(node.args[0]):
            self._flag(
                "set-iteration",
                node.args[0],
                f"{dotted}() over a set materializes hash order",
            )

    # -- iteration rules -----------------------------------------------

    def _is_set_expr(self, node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and self._dotted(node.func) == "set"

    def _check_set_iteration(self, iter_node):
        if self._is_set_expr(iter_node):
            self._flag(
                "set-iteration",
                iter_node,
                "iteration order over a set depends on hashes and "
                "addresses",
            )

    def visit_For(self, node):
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        for generator in node.generators:
            self._check_set_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- statement rules -----------------------------------------------

    def visit_ExceptHandler(self, node):
        if node.type is None:
            self._flag(
                "bare-except",
                node,
                "bare except: swallows everything, including injected "
                "faults and sanitizer violations",
            )
        else:
            names = self._exception_names(node.type)
            reraises = any(
                isinstance(child, ast.Raise) for child in ast.walk(node)
            )
            swallows = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
            if "BaseException" in names and not reraises:
                self._flag(
                    "bare-except",
                    node,
                    "except BaseException without re-raise swallows "
                    "everything",
                )
            elif names and names <= {"Exception", "BaseException"} \
                    and swallows:
                self._flag(
                    "bare-except",
                    node,
                    "except Exception: pass silently drops failures",
                )
        self.generic_visit(node)

    @staticmethod
    def _exception_names(node):
        if isinstance(node, ast.Name):
            return {node.id}
        if isinstance(node, ast.Tuple):
            return {
                element.id
                for element in node.elts
                if isinstance(element, ast.Name)
            }
        return set()

    def visit_Expr(self, node):
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "begin"
        ):
            self._flag(
                "unpaired-span",
                node,
                "begin() result discarded; the span can never be "
                "end()ed",
            )
        self.generic_visit(node)

    def visit_ClassDef(self, node):
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _COUNTER_NAME.match(target.id) and isinstance(
                    value, (ast.List, ast.Dict, ast.Set)
                ):
                    self._flag(
                        "module-counter",
                        stmt,
                        f"class-level mutable {target.id!r} is shared by "
                        "every instance in the process",
                    )
        self.generic_visit(node)


def lint_source(source, path, config=None, resolved_path=None):
    """Lint one module's source text.

    ``path`` is the display path attached to findings; ``resolved_path``
    (defaulting to ``path``) is what the config globs match against.
    Returns ``(findings, errors)``.
    """
    config = config or DEFAULT_CONFIG
    resolved_path = resolved_path or path
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [], [
            LintError(path, exc.lineno or 0, f"syntax error: {exc.msg}")
        ]
    line_allows, file_allows, errors = parse_pragmas(source, path)
    analyzer = _Analyzer(path, config, resolved_path)
    findings = [
        finding
        for finding in analyzer.run(tree)
        if finding.rule not in file_allows
        and finding.rule not in line_allows.get(finding.line, ())
    ]
    return findings, errors


def lint_paths(paths, config=None):
    """Lint every ``*.py`` file under ``paths``; returns (findings, errors)."""
    return check_paths(
        paths,
        lambda source, display, resolved: lint_source(
            source, display, config=config, resolved_path=resolved
        ),
    )


def render_findings(findings, show_hints=True):
    """Human-readable report lines for a list of findings."""
    return _render_findings(findings, RULES_BY_ID, show_hints=show_hints)
