"""Race analysis for the cooperative DES: yields are preemption points.

The engine (:mod:`repro.sim.process`) runs process bodies as
generators: between two ``yield``\\ s a body executes atomically, and a
yield is the *only* place another process — or an engine callback, or
an :class:`~repro.sim.events.Interrupted` thrown by ``interrupt()`` —
can run. That discipline makes most locking unnecessary, but it also
means every multi-step update of shared state that straddles a yield
is a race with whoever else can touch that state while the body is
suspended. Such a bug replays bit-identically (the interleaving is
deterministic per seed) and fails no invariant check; it just shifts
the contention numbers the paper's Figs. 5-10 report.

``python -m repro racecheck`` adapts classic dynamic-race machinery to
this cooperative world, statically:

* **preemption points** are the ``yield``\\ s of a process-like
  generator body (the same heuristic semcheck's protocol pass uses);
* **locksets** are :class:`~repro.sim.resources.Resource` grants held
  across those yields (``with res.request() as grant:`` or an explicit
  ``request()``/``release()`` pair) — a grant held continuously from
  one access to the next excludes any other would-be holder in
  between, exactly like a mutex;
* **shared state** is an attribute path (``self.stats.calls``, a
  module global, ``router.outstanding`` through a captured object)
  that a *different* function in the module can also write or read —
  ``__init__``-time writes do not count, and state nobody else touches
  cannot race.

Rule families (each finding names the location and the yield-crossing
that makes it unsafe):

* ``atomicity-violation`` — shared state is read, the body yields, and
  the same state is written, with no Resource held across the window:
  a check-then-act or read-modify-write that another process can
  interleave with (lost update / stale decision).
* ``unguarded-shared-write`` — a lock-free write to state that every
  other accessor touches under a Resource; one undisciplined writer
  voids the protocol the locked sites rely on.
* ``stale-read-across-yield`` — a local caches a shared value, the
  body yields, and the local is then used as if current. Windowed
  deltas that compare the cached value against a *fresh* re-read in
  the same statement (``self._total_busy - last_busy``) are the
  intended idiom and do not fire.
* ``interrupt-unsafe-update`` — a multi-step update (an ``+=``/``-=``
  balance pair on one location, or writes to two fields of the same
  owner object) split across a yield outside any ``try``/``finally``:
  an interrupt delivered at the interior yield leaves the object torn
  for the rest of the run.
* ``lock-order-inversion`` — two Resources acquired in opposite
  orders on different paths; two processes interleaving at the
  interior yield deadlock. A ``yield``-while-holding inventory
  (:func:`lock_inventory`, ``--list-locks``) backs this rule.

Scope and honesty: the analysis is per-module (cross-module aliasing
is undecidable here), matches multi-hop attribute paths by their leaf
name (``self.kernel._total_busy`` vs ``kernel._total_busy``), and does
not model re-entry of one body by two processes over the same object.
Suppression, baselines, and exit codes are shared with the other
checkers (``# repro: allow[rule-id]``, an empty committed baseline,
0/1/2); see ``docs/analysis.md``.
"""

import ast
from dataclasses import dataclass

from repro.analysis.common import (
    Finding,
    LintError,
    RuleInfo,
    check_paths,
    display_path,
    iter_python_files,
    parse_pragmas,
)
from repro.analysis.common import render_findings as _render_findings
from repro.analysis.semcheck import (
    _handler_catches_interrupt,
    _has_own_yield,
    _is_eventish,
    _is_request_call,
    _own_nodes,
)

RULES = (
    RuleInfo(
        "atomicity-violation",
        "shared state read before a yield and written after it with no "
        "Resource held across the window",
        "re-read the shared value after the last yield so the decision "
        "and the write happen in one atomic step, or hold a Resource "
        "across the whole read-modify-write (`with lock.request():`); "
        "another process can run at the yield and invalidate the value "
        "the write is based on.",
    ),
    RuleInfo(
        "unguarded-shared-write",
        "lock-free write to state every other accessor touches under a "
        "Resource",
        "acquire the same Resource around this write (or move it into "
        "the existing locked region); one writer outside the lock "
        "invalidates what every locked reader assumes it excludes.",
    ),
    RuleInfo(
        "stale-read-across-yield",
        "local caches a shared value across a yield, then is used as "
        "if current",
        "re-read the shared attribute after the yield instead of using "
        "the cached local — writers may have run while this process "
        "was suspended. Intentional windowed deltas are fine when the "
        "using statement also re-reads the shared value fresh.",
    ),
    RuleInfo(
        "interrupt-unsafe-update",
        "multi-step shared update can be torn by Interrupted at an "
        "interior yield",
        "wrap the update in try/finally that commits the balancing "
        "write, or accumulate into locals and commit after the last "
        "yield in one atomic step; an interrupt at the interior yield "
        "otherwise leaves the object half-updated for the rest of the "
        "run.",
    ),
    RuleInfo(
        "lock-order-inversion",
        "Resources acquired in opposite orders on different paths",
        "pick one global acquisition order and nest every "
        "request() the same way; two processes that take the pair in "
        "opposite orders deadlock when they interleave at the yield "
        "inside the first grant.",
    ),
)

RULES_BY_ID = {rule.id: rule for rule in RULES}

#: Method names that mutate their receiver (container write).
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "push",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Constructor-time writers never race with running processes.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


# ---------------------------------------------------------------------------
# Attribute-chain plumbing
# ---------------------------------------------------------------------------


def _chain(node):
    """``(root_name, path)`` of a Name/Attribute/Subscript chain.

    Subscripts are transparent — ``self.d[k].x`` resolves to
    ``('self', ('d', 'x'))``? No: a subscript *truncates* the path, so
    ``self.d[k] = v`` is a mutation of ``self.d`` (the container), and
    anything reached through the element is attributed to the
    container too. Returns ``None`` for chains not rooted at a name.
    """
    parts = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.clear()  # element attrs belong to the container
            node = node.value
        else:
            break
    if not isinstance(node, ast.Name):
        return None
    return node.id, tuple(reversed(parts))


def _chain_subscript_slices(node):
    """The slice expressions buried inside a chain (still plain reads)."""
    slices = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Subscript):
            slices.append(node.slice)
        node = node.value
    return slices


@dataclass(frozen=True)
class _Loc:
    """One shared-state location, canonical within a module.

    ``kind`` is ``"self"`` (instance attribute, ``owner`` is the class
    name), ``"obj"`` (reached through a non-self object reference,
    ``owner`` is the variable name), or ``"global"`` (module-level
    name). ``path`` is the attribute chain after the root.
    """

    kind: str
    owner: str
    path: tuple

    @property
    def leaf(self):
        return self.path[-1]

    @property
    def direct(self):
        """A plain ``self.attr`` — aliased only within its own class."""
        return self.kind == "self" and len(self.path) == 1

    def render(self):
        if self.kind == "global":
            return self.path[0]
        root = "self" if self.kind == "self" else self.owner
        return ".".join((root,) + self.path)


def _aliases(a, b):
    """Whether two locations may be the same object's state.

    Exact within a class for plain ``self.attr``; multi-hop paths and
    object references match by leaf name (``self.kernel._total_busy``
    aliases ``self._total_busy`` of the kernel class) — per-module, so
    the collision surface stays small.
    """
    if a.kind == "global" or b.kind == "global":
        return a.kind == b.kind and a.path[0] == b.path[0]
    if a.leaf != b.leaf:
        return False
    if a.direct and b.direct:
        return a.owner == b.owner
    return True


@dataclass(frozen=True)
class _Access:
    """One attribute access recorded by the module scan."""

    func: str  # unique body id, e.g. "FastRpcChannel.invoke:155"
    loc: _Loc
    kind: str  # "read" | "write"
    locked: bool  # lexically inside a `with *.request():` block
    is_init: bool


# ---------------------------------------------------------------------------
# Phase A: the module model (who can touch what, and under which lock)
# ---------------------------------------------------------------------------


class _Scope:
    """Name classification for one function body."""

    def __init__(self, func, cls, module_globals):
        self.cls = cls
        self.module_globals = module_globals
        self.global_decls = set()
        self.locals = set()
        args = func.args
        for param in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.locals.add(param.arg)
        for node in _own_nodes(func.body):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                self.locals.add(node.id)
        self.locals -= self.global_decls

    def classify(self, root, path):
        """Map a chain to a :class:`_Loc`, or ``None`` for pure locals."""
        if root == "self" and self.cls is not None:
            if not path:
                return None
            return _Loc("self", self.cls, path)
        if root in self.global_decls or (
            root not in self.locals and root in self.module_globals
        ):
            if not path:
                return _Loc("global", root, (root,))
            return _Loc("obj", root, path)
        if path:
            return _Loc("obj", root, path)
        return None


def _iter_functions(tree):
    """Every function with its owning class name, in source order.

    Nested defs inherit the enclosing class so a closure's captured
    ``self`` still classifies as instance state.
    """

    def visit(nodes, cls):
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                yield from visit(node.body, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, cls
                yield from visit(node.body, cls)
            elif isinstance(
                node,
                (ast.If, ast.While, ast.For, ast.Try, ast.With),
            ):
                yield from visit(ast.iter_child_nodes(node), cls)

    yield from visit(tree.body, None)


def _process_like(func):
    """Whether ``func`` looks like a DES process body (or a stage of
    one reached through ``yield from``)."""
    request_names = {
        stmt.targets[0].id
        for stmt in _own_nodes(func.body)
        if isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and _is_request_call(stmt.value)
    }
    for node in _own_nodes(func.body):
        if (
            isinstance(node, ast.Yield)
            and node.value is not None
            and _is_eventish(node.value, request_names)
        ):
            return True
        if isinstance(node, ast.YieldFrom) and isinstance(
            node.value, ast.Call
        ):
            return True
        if _is_request_call(node):
            return True
    return False


class _ModuleModel:
    """The module's access table plus its analyzable process bodies."""

    def __init__(self, tree):
        self.accesses = []
        self.process_bodies = []  # (func, cls, func_id, scope)
        self._alias_cache = {}
        self.module_globals = {
            target.id
            for stmt in tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign))
            for target in (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            if isinstance(target, ast.Name)
        }
        for func, cls in _iter_functions(tree):
            func_id = (
                f"{cls}.{func.name}:{func.lineno}"
                if cls
                else f"{func.name}:{func.lineno}"
            )
            scope = _Scope(func, cls, self.module_globals)
            is_init = cls is not None and func.name in _INIT_METHODS
            _AccessScan(self, func, func_id, scope, is_init).run()
            if _has_own_yield(func) and _process_like(func):
                self.process_bodies.append((func, cls, func_id, scope))

    # -- queries ---------------------------------------------------------

    def _interferers(self, func_id, loc):
        key = (func_id, loc)
        cached = self._alias_cache.get(key)
        if cached is None:
            cached = tuple(
                access
                for access in self.accesses
                if access.func != func_id
                and not access.is_init
                and _aliases(loc, access.loc)
            )
            self._alias_cache[key] = cached
        return cached

    def has_interfering_writer(self, func_id, loc):
        return any(
            access.kind == "write"
            for access in self._interferers(func_id, loc)
        )

    def has_interferer(self, func_id, loc):
        return bool(self._interferers(func_id, loc))

    def locked_elsewhere(self, func_id, loc):
        """Every other accessor is disciplined under a Resource."""
        others = self._interferers(func_id, loc)
        return bool(others) and all(access.locked for access in others)


class _AccessScan:
    """Phase A: record every access of one body with its lock context."""

    def __init__(self, model, func, func_id, scope, is_init):
        self.model = model
        self.func = func
        self.func_id = func_id
        self.scope = scope
        self.is_init = is_init

    def run(self):
        self._walk(self.func.body, locked=False)

    def _record(self, root, path, kind, locked):
        loc = self.scope.classify(root, path)
        if loc is None:
            return
        self.model.accesses.append(
            _Access(self.func_id, loc, kind, locked, self.is_init)
        )

    def _walk(self, body, locked):
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes scanned separately
            if isinstance(stmt, ast.With):
                inner = locked or any(
                    _is_request_call(item.context_expr)
                    for item in stmt.items
                )
                for item in stmt.items:
                    self._expr(item.context_expr, locked)
                self._walk(stmt.body, inner)
            elif isinstance(stmt, ast.If):
                self._expr(stmt.test, locked)
                self._walk(stmt.body, locked)
                self._walk(stmt.orelse, locked)
            elif isinstance(stmt, (ast.While, ast.For)):
                self._expr(
                    stmt.test
                    if isinstance(stmt, ast.While)
                    else stmt.iter,
                    locked,
                )
                if isinstance(stmt, ast.For):
                    self._targets([stmt.target], locked, "set")
                self._walk(stmt.body, locked)
                self._walk(stmt.orelse, locked)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, locked)
                for handler in stmt.handlers:
                    self._walk(handler.body, locked)
                self._walk(stmt.orelse, locked)
                self._walk(stmt.finalbody, locked)
            elif isinstance(stmt, ast.Assign):
                self._expr(stmt.value, locked)
                self._targets(stmt.targets, locked, "set")
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._expr(stmt.value, locked)
                    self._targets([stmt.target], locked, "set")
            elif isinstance(stmt, ast.AugAssign):
                self._expr(stmt.value, locked)
                chain = _chain(stmt.target)
                if chain is not None:
                    self._record(*chain, "read", locked)
                    self._record(*chain, "write", locked)
            elif isinstance(stmt, ast.Delete):
                self._targets(stmt.targets, locked, "del")
            else:
                self._expr(stmt, locked)

    def _targets(self, targets, locked, _how):
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._targets(target.elts, locked, _how)
                continue
            chain = _chain(target)
            if chain is not None:
                self._record(*chain, "write", locked)
            for slice_expr in _chain_subscript_slices(target):
                self._expr(slice_expr, locked)

    def _expr(self, node, locked):
        if node is None:
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            return
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)):
            chain = _chain(node)
            if chain is not None:
                ctx = getattr(node, "ctx", None)
                kind = (
                    "write"
                    if isinstance(ctx, (ast.Store, ast.Del))
                    else "read"
                )
                self._record(*chain, kind, locked)
                for slice_expr in _chain_subscript_slices(node):
                    self._expr(slice_expr, locked)
                return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
            ):
                chain = _chain(func.value)
                if chain is not None:
                    self._record(*chain, "write", locked)
                else:
                    self._expr(func.value, locked)
            else:
                self._expr(func, locked)
            for arg in node.args:
                self._expr(arg, locked)
            for keyword in node.keywords:
                self._expr(keyword.value, locked)
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child, locked)


# ---------------------------------------------------------------------------
# Phase B: flow-sensitive pass over each process body
# ---------------------------------------------------------------------------
#
# The pass walks one generator body tracking three things per path:
# the live lockset (each acquisition gets a unique id, so an id seen
# at two accesses proves the grant was held *continuously* between
# them), a record per shared location of its latest read and latest
# write, and the shared-derived locals. Every yield marks all records
# "crossed" (and "unprotected" when no enclosing try/finally or
# Interrupted handler covers it); rule checks then reduce to record
# flags at the second access. Branches are walked on copies and
# merged conservatively (flags OR, locksets intersect).


def _new_record(node, acqs, op="set"):
    return {
        "node": node,
        "acqs": frozenset(acqs),
        "crossed": False,
        "unprot": False,
        "op": op,
    }


def _merge_records(a, b):
    return {
        "node": a["node"],
        "acqs": a["acqs"] & b["acqs"],
        "crossed": a["crossed"] or b["crossed"],
        "unprot": a["unprot"] or b["unprot"],
        "op": a["op"] if a["op"] == b["op"] else "set",
    }


def _copy_state(state):
    return {
        "reads": {loc: dict(rec) for loc, rec in state["reads"].items()},
        "writes": {loc: dict(rec) for loc, rec in state["writes"].items()},
        "groups": {
            group: {loc: dict(rec) for loc, rec in members.items()}
            for group, members in state["groups"].items()
        },
        "locals": {
            name: {
                "sources": set(rec["sources"]),
                **{k: v for k, v in rec.items() if k != "sources"},
            }
            for name, rec in state["locals"].items()
        },
        "live": dict(state["live"]),
        "handles": dict(state["handles"]),
    }


def _merge_states(a, b):
    merged = {
        "reads": {},
        "writes": {},
        "groups": {},
        "locals": {},
        # A grant held on only one path does not guard the join.
        "live": {
            acq: token
            for acq, token in a["live"].items()
            if acq in b["live"]
        },
        "handles": {
            name: acq
            for name, acq in a["handles"].items()
            if b["handles"].get(name) == acq
        },
    }
    for key in ("reads", "writes"):
        for loc in set(a[key]) | set(b[key]):
            rec_a, rec_b = a[key].get(loc), b[key].get(loc)
            merged[key][loc] = (
                _merge_records(rec_a, rec_b)
                if rec_a and rec_b
                else dict(rec_a or rec_b)
            )
    for group in set(a["groups"]) | set(b["groups"]):
        members_a = a["groups"].get(group, {})
        members_b = b["groups"].get(group, {})
        merged["groups"][group] = {
            loc: (
                _merge_records(members_a[loc], members_b[loc])
                if loc in members_a and loc in members_b
                else dict(members_a.get(loc) or members_b[loc])
            )
            for loc in set(members_a) | set(members_b)
        }
    for name in set(a["locals"]) | set(b["locals"]):
        rec_a, rec_b = a["locals"].get(name), b["locals"].get(name)
        if rec_a and rec_b:
            rec = _merge_records(rec_a, rec_b)
            rec["sources"] = rec_a["sources"] | rec_b["sources"]
        else:
            rec = dict(rec_a or rec_b)
            rec["sources"] = set(rec["sources"])
        merged["locals"][name] = rec
    return merged


class _ModuleSink:
    """Cross-body facts one module run accumulates."""

    def __init__(self):
        #: (held_token, acquired_token) -> (node, func_label), first seen.
        self.pairs = {}
        #: yield-while-holding inventory rows.
        self.inventory = []


class _BodyPass:
    """The flow-sensitive race walk over one process body."""

    def __init__(self, checker, func, func_id, scope, model, sink):
        self.checker = checker
        self.func = func
        self.func_id = func_id
        self.scope = scope
        self.model = model
        self.sink = sink
        self.state = {
            "reads": {},
            "writes": {},
            "groups": {},
            "locals": {},
            "live": {},  # acq_id -> lock token
            "handles": {},  # handle local name -> acq_id
        }
        self.protect = 0  # enclosing try/finally or Interrupted handler
        self.acq_seq = 0
        self.flagged = set()
        # Reads are only worth tracking for locations this body also
        # writes (atomicity needs the read-...-write pair).
        self.written_locs = self._prescan_written()

    # -- setup -----------------------------------------------------------

    def _prescan_written(self):
        written = set()
        for node in _own_nodes(self.func.body):
            chain = None
            if isinstance(node, (ast.Attribute, ast.Subscript)) and (
                isinstance(getattr(node, "ctx", None), (ast.Store, ast.Del))
            ):
                chain = _chain(node)
            elif isinstance(node, ast.AugAssign):
                chain = _chain(node.target)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                chain = _chain(node.func.value)
            if chain is None:
                continue
            loc = self.scope.classify(*chain)
            if loc is not None:
                written.add(loc)
        return written

    # -- driver ----------------------------------------------------------

    def run(self):
        self._walk_block(self.func.body)

    def _flag(self, rule, node, dedupe_key, message):
        key = (rule, dedupe_key)
        if key in self.flagged:
            return
        self.flagged.add(key)
        self.checker.flag(rule, node, message)

    # -- block walking ---------------------------------------------------

    def _walk_block(self, body):
        """Walk a statement list; True if it definitely terminates.

        A block ending in ``raise``/``return``/``break``/``continue``
        contributes no state to the join after its parent branch —
        records from (say) an error path that raises must not pair
        with writes on the fall-through path.
        """
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.If):
                if self._walk_if(stmt):
                    return True
            elif isinstance(stmt, (ast.While, ast.For)):
                self._walk_loop(stmt)
            elif isinstance(stmt, ast.Try):
                self._walk_try(stmt)
            elif isinstance(stmt, ast.With):
                self._walk_with(stmt)
            else:
                self._exec(stmt)
                if isinstance(
                    stmt, (ast.Raise, ast.Return, ast.Break, ast.Continue)
                ):
                    return True
        return False

    def _walk_if(self, stmt):
        self._exec(stmt.test)
        entry = _copy_state(self.state)
        then_done = self._walk_block(stmt.body)
        then_state = self.state
        self.state = entry
        else_done = self._walk_block(stmt.orelse)
        if then_done and else_done:
            return True
        if else_done:
            self.state = then_state
        elif not then_done:
            self.state = _merge_states(then_state, self.state)
        return False

    def _walk_loop(self, stmt):
        if isinstance(stmt, ast.While):
            self._exec(stmt.test)
        else:
            self._exec(stmt.iter)
            self._bind_loop_targets(stmt.target)
        entry = _copy_state(self.state)
        # Two passes so state carried over the back edge is seen; the
        # group map resets per pass so each iteration's writes — a
        # complete, consistent update — don't pair across iterations.
        for _round in range(2):
            self.state["groups"] = {}
            self._walk_block(stmt.body)
            self.state = _merge_states(entry, self.state)
        self.state["groups"] = {}
        self._walk_block(stmt.orelse)

    def _bind_loop_targets(self, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_loop_targets(element)
        elif isinstance(target, ast.Name):
            self.state["locals"].pop(target.id, None)

    def _walk_try(self, stmt):
        protected = bool(stmt.finalbody) or any(
            _handler_catches_interrupt(handler)
            for handler in stmt.handlers
        )
        entry = _copy_state(self.state)
        if protected:
            self.protect += 1
        self._walk_block(stmt.body)
        if protected:
            self.protect -= 1
        body_state = _copy_state(self.state)
        self._walk_block(stmt.orelse)
        after = self.state
        for handler in stmt.handlers:
            # A handler can run after any prefix of the body.
            self.state = _merge_states(
                _copy_state(entry), _copy_state(body_state)
            )
            self._walk_block(handler.body)
            after = _merge_states(after, self.state)
        self.state = after
        if stmt.finalbody:
            self.protect += 1
            self._walk_block(stmt.finalbody)
            self.protect -= 1

    def _walk_with(self, stmt):
        acquired = []
        for item in stmt.items:
            context = item.context_expr
            if _is_request_call(context):
                token = self._lock_token(context)
                for held in self.state["live"].values():
                    self.sink.pairs.setdefault(
                        (held, token),
                        (context, self.func_id),
                    )
                self.acq_seq += 1
                self.state["live"][self.acq_seq] = token
                acquired.append(self.acq_seq)
                if isinstance(item.optional_vars, ast.Name):
                    self.state["handles"][item.optional_vars.id] = (
                        self.acq_seq
                    )
            else:
                self._exec(context)
                if isinstance(item.optional_vars, ast.Name):
                    self.state["locals"].pop(item.optional_vars.id, None)
        self._walk_block(stmt.body)
        for acq in acquired:
            self.state["live"].pop(acq, None)
        self.state["handles"] = {
            name: acq
            for name, acq in self.state["handles"].items()
            if acq not in acquired
        }

    def _lock_token(self, request_call):
        """Cross-body comparable token for the requested Resource."""
        chain = _chain(request_call.func.value)
        if chain is None:
            return f"<expr:{request_call.lineno}>"
        root, path = chain
        if root == "self":
            return ".".join(path) if path else "self"
        return ".".join((root,) + path)

    # -- one simple statement --------------------------------------------

    def _exec(self, stmt):
        if stmt is None:
            return
        reads, writes, yields = _collect_events(stmt)
        # Explicit request()/release() handle protocol.
        release_handles = _released_handles(stmt)
        read_locs = set()
        for chain, node in reads:
            loc = self.scope.classify(*chain)
            if loc is not None:
                read_locs.add(loc)
        write_locs = set()
        for chain, node, _op in writes:
            loc = self.scope.classify(*chain)
            if loc is not None:
                write_locs.add(loc)

        self._check_stale_locals(stmt, reads, read_locs, write_locs)
        live_ids = frozenset(self.state["live"])
        for loc in read_locs:
            if loc in self.written_locs:
                self.state["reads"][loc] = _new_record(stmt, live_ids)

        has_yield = bool(yields)
        if has_yield:
            self._apply_yield(yields[0])

        request_target = self._apply_request(stmt)
        for handle in release_handles:
            acq = self.state["handles"].pop(handle, None)
            if acq is not None:
                self.state["live"].pop(acq, None)

        live_ids = frozenset(self.state["live"])
        for chain, node, op in writes:
            loc = self.scope.classify(*chain)
            if loc is not None:
                self._apply_shared_write(loc, node, op, live_ids)
            elif isinstance(node, ast.Name) or (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)
            ):
                name = node.id if isinstance(node, ast.Name) else (
                    node.target.id
                )
                if name != request_target:
                    self.state["locals"].pop(name, None)
        if not has_yield:
            self._track_locals(stmt, read_locs, request_target)

    def _apply_request(self, stmt):
        """``handle = res.request()`` acquires; returns the handle name."""
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_request_call(stmt.value)
        ):
            return None
        token = self._lock_token(stmt.value)
        for held in self.state["live"].values():
            self.sink.pairs.setdefault(
                (held, token), (stmt.value, self.func_id)
            )
        self.acq_seq += 1
        self.state["live"][self.acq_seq] = token
        name = stmt.targets[0].id
        self.state["handles"][name] = self.acq_seq
        self.state["locals"].pop(name, None)
        return name

    def _apply_yield(self, node):
        if self.state["live"]:
            self.sink.inventory.append(
                {
                    "line": node.lineno,
                    # func_id carries a ":line" disambiguator; the
                    # inventory is for humans, so report the qualname.
                    "function": self.func_id.rsplit(":", 1)[0],
                    "locks": sorted(set(self.state["live"].values())),
                }
            )
        unprotected = self.protect == 0
        for table in ("reads", "writes", "locals"):
            for record in self.state[table].values():
                record["crossed"] = True
                record["unprot"] = record["unprot"] or unprotected
        for members in self.state["groups"].values():
            for record in members.values():
                record["crossed"] = True
                record["unprot"] = record["unprot"] or unprotected

    def _check_stale_locals(self, stmt, reads, read_locs, write_locs):
        for chain, node in reads:
            root, path = chain
            if path or root not in self.state["locals"]:
                continue
            record = self.state["locals"][root]
            if not record["crossed"]:
                continue
            if record["acqs"] & frozenset(self.state["live"]):
                continue  # a Resource was held across the whole window
            sources = record["sources"]
            if sources & read_locs:
                # Windowed delta: the statement re-reads the shared
                # value fresh, so the code acknowledges the cached one
                # is a snapshot; that clears the obligation for later
                # uses too (the snapshot is now deliberate history).
                self.state["locals"].pop(root, None)
                continue
            if sources & write_locs:
                # Write-back: the shared value now equals the local
                # (and atomicity-violation owns the racy-update case).
                self.state["locals"].pop(root, None)
                continue
            source = sorted(sources, key=lambda loc: loc.render())[0]
            if not self.model.has_interfering_writer(self.func_id, source):
                continue
            self._flag(
                "stale-read-across-yield",
                node,
                root,
                f"`{root}` caches `{source.render()}` from before a "
                "yield; writers may have run while this process was "
                "suspended, so the cached value can be stale here",
            )
            self.state["locals"].pop(root, None)

    def _track_locals(self, stmt, read_locs, request_target):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        sources = {
            loc
            for loc in read_locs
            if self.model.has_interfering_writer(self.func_id, loc)
        }
        if not sources:
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id != request_target:
                record = _new_record(stmt, self.state["live"])
                record["sources"] = sources
                self.state["locals"][target.id] = record

    def _apply_shared_write(self, loc, node, op, live_ids):
        read_rec = self.state["reads"].get(loc)
        if (
            read_rec is not None
            and read_rec["crossed"]
            and not (read_rec["acqs"] & live_ids)
            and self.model.has_interfering_writer(self.func_id, loc)
        ):
            self._flag(
                "atomicity-violation",
                node,
                loc,
                f"`{loc.render()}` was read at line "
                f"{read_rec['node'].lineno}, the process yielded, and "
                "is written here with no Resource held across the "
                "window; another writer can interleave at the yield",
            )
        if (
            not live_ids
            and self.model.locked_elsewhere(self.func_id, loc)
        ):
            self._flag(
                "unguarded-shared-write",
                node,
                loc,
                f"`{loc.render()}` is written without a Resource here "
                "but every other accessor holds one; this write races "
                "the locked regions",
            )
        prev = self.state["writes"].get(loc)
        if (
            prev is not None
            and prev["unprot"]
            and {prev["op"], op} == {"add", "sub"}
            and self.model.has_interferer(self.func_id, loc)
        ):
            self._flag(
                "interrupt-unsafe-update",
                node,
                loc,
                f"`{loc.render()}` is adjusted at line "
                f"{prev['node'].lineno} and balanced here across an "
                "unprotected yield; an Interrupted delivered between "
                "them leaves the counter permanently skewed",
            )
        if len(loc.path) >= 2:
            group = (loc.kind, loc.owner, loc.path[:-1])
            members = self.state["groups"].setdefault(group, {})
            for other_loc, other_rec in members.items():
                if other_loc == loc or not other_rec["unprot"]:
                    continue
                if not (
                    self.model.has_interferer(self.func_id, loc)
                    or self.model.has_interferer(self.func_id, other_loc)
                ):
                    continue
                owner = loc.render().rsplit(".", 1)[0]
                self._flag(
                    "interrupt-unsafe-update",
                    node,
                    group,
                    f"`{owner}` is updated field-by-field across an "
                    f"unprotected yield (`{other_loc.leaf}` at line "
                    f"{other_rec['node'].lineno}, `{loc.leaf}` here); "
                    "an Interrupted at the interior yield leaves it "
                    "half-updated",
                )
                break
            members[loc] = _new_record(node, live_ids, op)
        self.state["writes"][loc] = _new_record(node, live_ids, op)
        self.state["reads"].pop(loc, None)


def _collect_events(stmt):
    """``(reads, writes, yields)`` of one simple statement.

    Reads and writes are maximal attribute chains (chains in Store/Del
    context, AugAssign targets, and mutator calls count as writes;
    AugAssign targets also read). Yields cover Yield and YieldFrom.
    """
    reads = []
    writes = []
    yields = []

    def visit(node):
        if node is None:
            return
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
             ast.Lambda),
        ):
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yields.append(node)
            visit(node.value)
            return
        if isinstance(node, ast.AugAssign):
            chain = _chain(node.target)
            if chain is not None:
                reads.append((chain, node.target))
                writes.append((chain, node, _aug_op(node.op)))
            else:
                visit(node.target)
            visit(node.value)
            return
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)):
            chain = _chain(node)
            if chain is not None:
                ctx = getattr(node, "ctx", None)
                if isinstance(ctx, (ast.Store, ast.Del)):
                    op = "mut" if isinstance(node, ast.Subscript) else "set"
                    writes.append((chain, node, op))
                else:
                    reads.append((chain, node))
                for slice_expr in _chain_subscript_slices(node):
                    visit(slice_expr)
                return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                chain = _chain(func.value)
                if chain is not None:
                    writes.append((chain, node, "mut"))
                else:
                    visit(func.value)
            else:
                visit(func)
            for arg in node.args:
                visit(arg)
            for keyword in node.keywords:
                visit(keyword.value)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(stmt)
    return reads, writes, yields


def _aug_op(op):
    if isinstance(op, ast.Add):
        return "add"
    if isinstance(op, ast.Sub):
        return "sub"
    return "aug"


def _released_handles(stmt):
    """Handle names ``release()``d anywhere in the statement."""
    names = set()
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
            and isinstance(node.func.value, ast.Name)
            and not node.args
        ):
            names.add(node.func.value.id)
    return names


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


class _Checker:
    """Shared flag sink: de-dupes by (path, line, rule)."""

    def __init__(self, path):
        self.path = path
        self.findings = []
        self._seen = set()

    def flag(self, rule, node, message):
        finding = Finding(
            rule, self.path, node.lineno, node.col_offset, message
        )
        if finding.key() in self._seen:
            return
        self._seen.add(finding.key())
        self.findings.append(finding)


def _flag_lock_inversions(checker, sink):
    for (first, second), (node, func_id) in sorted(
        sink.pairs.items(),
        key=lambda item: (item[1][0].lineno, item[1][0].col_offset),
    ):
        if first == second:
            continue
        other = sink.pairs.get((second, first))
        if other is None:
            continue
        other_node, other_func = other
        checker.flag(
            "lock-order-inversion",
            node,
            f"`{second}` is requested while `{first}` is held, but "
            f"{other_func} (line {other_node.lineno}) requests "
            f"`{first}` while holding `{second}`; the two orders "
            "deadlock when the holders interleave at a yield",
        )


def _analyze(source, path):
    """Full module analysis: ``(findings, errors, sink)``."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return (
            [],
            [LintError(path, exc.lineno or 0, f"syntax error: {exc.msg}")],
            _ModuleSink(),
        )
    line_allows, file_allows, errors = parse_pragmas(
        source, path, applicable=set(RULES_BY_ID)
    )
    checker = _Checker(path)
    model = _ModuleModel(tree)
    sink = _ModuleSink()
    for func, _cls, func_id, scope in model.process_bodies:
        _BodyPass(checker, func, func_id, scope, model, sink).run()
    _flag_lock_inversions(checker, sink)
    findings = sorted(
        (
            finding
            for finding in checker.findings
            if finding.rule not in file_allows
            and finding.rule not in line_allows.get(finding.line, ())
        ),
        key=lambda finding: finding.key(),
    )
    return findings, errors, sink


def racecheck_source(source, path, resolved_path=None):
    """Racecheck one module's source text; returns ``(findings, errors)``."""
    findings, errors, _sink = _analyze(source, path)
    return findings, errors


def racecheck_paths(paths):
    """Racecheck every ``*.py`` file under ``paths``."""
    return check_paths(
        paths,
        lambda source, display, resolved: racecheck_source(
            source, display, resolved_path=resolved
        ),
    )


def lock_inventory(paths):
    """The yield-while-holding inventory for every file under ``paths``.

    Returns ``(records, errors)``; one record per yield executed while
    at least one Resource grant is live, sorted by location — the raw
    material behind ``lock-order-inversion`` and the honest answer to
    "what is ever held across a suspension?".
    """
    records = []
    errors = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except OSError as exc:
            errors.append(LintError(str(file_path), 0, f"unreadable: {exc}"))
            continue
        display = display_path(file_path)
        _findings, file_errors, sink = _analyze(source, display)
        errors.extend(file_errors)
        for row in sink.inventory:
            records.append({"path": display, **row})
    records.sort(key=lambda row: (row["path"], row["line"]))
    return records, errors


def render_findings(findings, show_hints=True):
    """Human-readable report lines for racecheck findings."""
    return _render_findings(findings, RULES_BY_ID, show_hints=show_hints)
