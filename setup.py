"""Setup shim.

The sandboxed environment has no network and no ``wheel`` package, so PEP
660 editable installs (``pip install -e .``) cannot build; ``python
setup.py develop`` installs an egg-link instead. Configuration lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
